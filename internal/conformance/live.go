package conformance

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"batchmaker/internal/core"
	"batchmaker/internal/obsv"
	"batchmaker/internal/policy"
	"batchmaker/internal/server"
	"batchmaker/internal/tensor"
)

// Outcome is a request's terminal state as observed by its caller.
type Outcome int

// Outcomes. Shed means the submission never entered the system (admission
// control, drain, or dead-on-arrival deadline); the others are terminal
// states of admitted requests.
const (
	OutcomeCompleted Outcome = iota
	OutcomeCancelled
	OutcomeExpired
	OutcomeFailed
	OutcomeShed
)

func (o Outcome) String() string {
	switch o {
	case OutcomeCompleted:
		return "completed"
	case OutcomeCancelled:
		return "cancelled"
	case OutcomeExpired:
		return "expired"
	case OutcomeFailed:
		return "failed"
	case OutcomeShed:
		return "shed"
	}
	return fmt.Sprintf("outcome(%d)", int(o))
}

// LiveOpts configures one live-engine conformance run.
type LiveOpts struct {
	// Workers is the pipeline worker count (default 2).
	Workers int
	// Devices, when non-empty, shards the engine into per-device worker
	// pools (one entry per device, workers per pool); Workers is then
	// ignored. Empty keeps the single-pool shorthand.
	Devices []int
	// MaxBatch is the per-type maximum batch size (default 8).
	MaxBatch int
	// MaxTasksToSubmit is the per-round dispatch bound (default 3).
	MaxTasksToSubmit int
	// TimeScale converts the workload's virtual durations to real ones
	// (real = virtual × TimeScale; default 1, i.e. virtual milliseconds run
	// as real milliseconds).
	TimeScale float64
	// Faults, when non-nil, is installed as the server's fault injector.
	Faults server.FaultInjector
	// Chaos forwards deliberate scheduler defects (the harness self-test).
	Chaos core.Chaos
	// MaxQueuedCells, when positive, enables admission control so the run
	// also exercises load shedding.
	MaxQueuedCells int
	// Policy, when enabled, installs the adaptive control layer
	// (Little's-law admission + AIMD MaxBatch), so runs exercise
	// policy-driven shedding and batch-ceiling moves under the full
	// invariant set.
	Policy policy.Config
}

func (o LiveOpts) withDefaults() LiveOpts {
	if o.Workers <= 0 {
		o.Workers = 2
	}
	if o.MaxBatch <= 0 {
		o.MaxBatch = 8
	}
	if o.MaxTasksToSubmit <= 0 {
		o.MaxTasksToSubmit = 3
	}
	if o.TimeScale <= 0 {
		o.TimeScale = 1
	}
	return o
}

// LiveResult is everything the invariant checker needs from one live run.
type LiveResult struct {
	// Outcome, Errs and Results are keyed by workload request Index.
	Outcome map[int]Outcome
	Errs    map[int]error
	Results map[int]map[string]*tensor.Tensor
	// IDs maps workload index → server request ID for admitted requests;
	// RevIDs is the inverse.
	IDs    map[int]core.RequestID
	RevIDs map[core.RequestID]int

	Stats      server.Stats
	Trace      []server.Event
	TraceTotal int
	// Metrics is the server's observability registry handle (the same
	// metric families a live /metrics scrape exposes), readable after the
	// run so invariant checks can cross-validate against Stats.
	Metrics *obsv.ServingMetrics
	// MaxBatch echoes the run's per-type batch bound for the checker.
	MaxBatch int
	// SchedulerClean records whether the scheduler's queues and gauges
	// drained to zero after every request resolved.
	SchedulerClean bool
}

// RunLive executes the workload against a freshly built live server:
// requests are submitted in arrival order with scaled inter-arrival gaps,
// cancellations and deadlines follow the workload's schedule, and the run
// ends only after every submitted request has resolved.
func RunLive(m *Model, w *Workload, opts LiveOpts) (*LiveResult, error) {
	opts = opts.withDefaults()
	// The trace must hold every event of the run — the conservation checks
	// are meaningless over an evicted ring.
	traceCap := 4*w.Cells() + 16*len(w.Reqs) + 256
	cfg := server.Config{
		Workers:          opts.Workers,
		MaxTasksToSubmit: opts.MaxTasksToSubmit,
		TraceCapacity:    traceCap,
		Faults:           opts.Faults,
		SchedulerChaos:   opts.Chaos,
		MaxQueuedCells:   opts.MaxQueuedCells,
		Policy:           opts.Policy,
		Cells: []server.CellSpec{
			{Cell: m.LSTM, MaxBatch: opts.MaxBatch},
			{Cell: m.Enc, MaxBatch: opts.MaxBatch, Priority: 0},
			{Cell: m.Dec, MaxBatch: opts.MaxBatch, Priority: 1},
			{Cell: m.Leaf, MaxBatch: opts.MaxBatch, Priority: 0},
			{Cell: m.Internal, MaxBatch: opts.MaxBatch, Priority: 1},
		},
	}
	for _, n := range opts.Devices {
		cfg.Devices = append(cfg.Devices, server.DeviceConfig{Workers: n})
	}
	srv, err := server.New(cfg)
	if err != nil {
		return nil, err
	}
	defer srv.Stop()

	scale := func(d time.Duration) time.Duration {
		return time.Duration(float64(d) * opts.TimeScale)
	}

	res := &LiveResult{
		MaxBatch: opts.MaxBatch,
		Outcome:  make(map[int]Outcome, len(w.Reqs)),
		Errs:     make(map[int]error, len(w.Reqs)),
		Results:  make(map[int]map[string]*tensor.Tensor),
		IDs:      make(map[int]core.RequestID),
		RevIDs:   make(map[core.RequestID]int),
	}

	type admitted struct {
		idx    int
		handle *server.Handle
	}
	var handles []admitted
	var cancels sync.WaitGroup
	start := time.Now()
	for _, r := range w.Reqs {
		// Open-loop arrivals: sleep until the request's scaled arrival time.
		if wait := scale(r.Arrival) - time.Since(start); wait > 0 {
			time.Sleep(wait)
		}
		g, err := m.BuildGraph(r)
		if err != nil {
			return nil, fmt.Errorf("conformance: building request %d: %w", r.Index, err)
		}
		var so server.SubmitOpts
		if r.Deadline > 0 {
			so.Deadline = time.Now().Add(scale(r.Deadline))
		}
		h, err := srv.SubmitAsyncOpts(g, so)
		if err != nil {
			// Never admitted: overload shed, drain, or dead-on-arrival
			// deadline. All count as Shed for conservation purposes.
			res.Outcome[r.Index] = OutcomeShed
			res.Errs[r.Index] = err
			continue
		}
		res.IDs[r.Index] = h.ID()
		res.RevIDs[h.ID()] = r.Index
		handles = append(handles, admitted{idx: r.Index, handle: h})
		if r.CancelAfter > 0 {
			cancels.Add(1)
			delay := scale(r.CancelAfter)
			go func(h *server.Handle) {
				defer cancels.Done()
				time.Sleep(delay)
				h.Cancel()
			}(h)
		}
	}

	for _, a := range handles {
		<-a.handle.Done()
		out, err := a.handle.Result()
		res.Errs[a.idx] = err
		switch {
		case err == nil:
			res.Outcome[a.idx] = OutcomeCompleted
			res.Results[a.idx] = out
		case errors.Is(err, server.ErrCancelled):
			res.Outcome[a.idx] = OutcomeCancelled
		case errors.Is(err, server.ErrExpired):
			res.Outcome[a.idx] = OutcomeExpired
		default:
			res.Outcome[a.idx] = OutcomeFailed
		}
	}
	cancels.Wait()

	// Graceful drain: no live requests remain, so this just flushes the
	// pipeline and stops it; the final stats mirror is the drained state.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		return nil, fmt.Errorf("conformance: drain: %w", err)
	}
	res.Stats = srv.Stats()
	res.Trace, res.TraceTotal = srv.Trace()
	res.SchedulerClean = srv.SchedulerClean()
	res.Metrics = srv.Metrics()
	return res, nil
}
