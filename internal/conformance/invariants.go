package conformance

import (
	"fmt"
	"sort"

	"batchmaker/internal/cellgraph"
	"batchmaker/internal/core"
	"batchmaker/internal/server"
	"batchmaker/internal/tensor"
)

// Violation is one invariant breach. Req is the workload request index the
// breach is attributed to, or -1 for run-global violations.
type Violation struct {
	Kind   string
	Req    int
	Detail string
}

func (v Violation) String() string {
	if v.Req >= 0 {
		return fmt.Sprintf("[%s] req%d: %s", v.Kind, v.Req, v.Detail)
	}
	return fmt.Sprintf("[%s] %s", v.Kind, v.Detail)
}

// FormatViolations renders a violation list one per line.
func FormatViolations(vs []Violation) string {
	s := ""
	for _, v := range vs {
		s += "  " + v.String() + "\n"
	}
	return s
}

// Check applies every live-run invariant that must hold under any thread
// interleaving, using only artifacts of the run (outcomes, stats, trace) and
// the precomputed sequential oracle:
//
//   - outcome conservation: every workload request has exactly one terminal
//     state, and the caller-observed outcome counts equal the server's own
//     Outcomes counters;
//   - trace lifecycle: every admitted request has exactly one admit event and
//     exactly one terminal event, of the kind matching its outcome;
//   - exactly-once execution: no (request, node) row executes twice, rows
//     belong to admitted requests, and node IDs are in range;
//   - dependency order: every executed row's graph dependencies appear
//     strictly earlier in the trace (producers before consumers — the
//     observable form of the paper's same-stream FIFO argument);
//   - completion: a completed request executed its whole unfolded graph, and
//     its outputs are bit-identical to the sequential oracle;
//   - clean drain: the scheduler's queues, gauges and the server's
//     live-request and queued-cell counters all reached zero.
//
// It returns every violation found (empty means the run conformed).
func Check(m *Model, w *Workload, res *LiveResult, oracle map[int]map[string]*tensor.Tensor) []Violation {
	var vs []Violation
	violate := func(kind string, req int, format string, a ...interface{}) {
		vs = append(vs, Violation{Kind: kind, Req: req, Detail: fmt.Sprintf(format, a...)})
	}

	// --- Outcome conservation -------------------------------------------
	counts := map[Outcome]int{}
	for _, r := range w.Reqs {
		out, ok := res.Outcome[r.Index]
		if !ok {
			violate("lost-request", r.Index, "no terminal state recorded")
			continue
		}
		counts[out]++
	}
	o := res.Stats.Outcomes
	admitted := len(w.Reqs) - counts[OutcomeShed]
	for _, c := range []struct {
		name     string
		observed int
		counter  int
	}{
		{"admitted", admitted, o.Admitted},
		{"completed", counts[OutcomeCompleted], o.Completed},
		{"cancelled", counts[OutcomeCancelled], o.Cancelled},
		{"expired", counts[OutcomeExpired], o.Expired},
		{"failed", counts[OutcomeFailed], o.Failed},
		{"rejected", counts[OutcomeShed], o.Rejected},
	} {
		if c.observed != c.counter {
			violate("counter-mismatch", -1, "%s: callers observed %d, server counted %d", c.name, c.observed, c.counter)
		}
	}
	if o.Resolved() != o.Admitted {
		violate("counter-mismatch", -1, "resolved %d != admitted %d", o.Resolved(), o.Admitted)
	}

	// --- Clean drain ----------------------------------------------------
	if !res.SchedulerClean {
		violate("unclean-drain", -1, "scheduler queues/gauges not empty after drain")
	}
	if res.Stats.LiveRequests != 0 {
		violate("unclean-drain", -1, "%d live requests after drain", res.Stats.LiveRequests)
	}
	if res.Stats.QueuedCells != 0 {
		violate("unclean-drain", -1, "%d queued cells after drain", res.Stats.QueuedCells)
	}

	// --- Numerics vs the sequential oracle ------------------------------
	for _, r := range w.Reqs {
		if res.Outcome[r.Index] != OutcomeCompleted {
			continue
		}
		want, got := oracle[r.Index], res.Results[r.Index]
		if got == nil {
			violate("numerics", r.Index, "completed with nil results")
			continue
		}
		if len(got) != len(want) {
			violate("numerics", r.Index, "result has %d outputs, oracle has %d", len(got), len(want))
			continue
		}
		for name, wt := range want {
			gt, ok := got[name]
			if !ok {
				violate("numerics", r.Index, "missing output %q", name)
				continue
			}
			if !gt.Equal(wt) {
				violate("numerics", r.Index, "output %q differs from sequential oracle", name)
			}
		}
	}

	// --- Trace-based checks ---------------------------------------------
	if res.TraceTotal != len(res.Trace) {
		// The ring evicted events; the conservation checks below would be
		// vacuous, so surface that instead of false positives.
		violate("trace-evicted", -1, "trace holds %d of %d events; raise TraceCapacity", len(res.Trace), res.TraceTotal)
		return vs
	}

	// Per-request graph dependencies, rebuilt deterministically from the
	// workload (BuildGraph is a pure function of the request).
	deps := make(map[int][][]cellgraph.NodeID, len(res.IDs))
	cells := make(map[int]int, len(res.IDs))
	for _, r := range w.Reqs {
		if _, ok := res.IDs[r.Index]; !ok {
			continue
		}
		g, err := m.BuildGraph(r)
		if err != nil {
			violate("rebuild", r.Index, "graph rebuild failed: %v", err)
			continue
		}
		d := make([][]cellgraph.NodeID, len(g.Nodes))
		for _, n := range g.Nodes {
			d[n.ID] = n.Deps()
		}
		deps[r.Index] = d
		cells[r.Index] = len(g.Nodes)
	}

	admits := map[core.RequestID]int{}
	terminals := map[core.RequestID][]server.EventKind{}
	executed := make(map[int]map[cellgraph.NodeID]bool, len(res.IDs))
	tracedCells := 0
	for _, e := range res.Trace {
		switch e.Kind {
		case server.EventAdmit:
			admits[e.Req]++
		case server.EventComplete, server.EventFail, server.EventExpire, server.EventCancel:
			terminals[e.Req] = append(terminals[e.Req], e.Kind)
		case server.EventTaskExec:
			if e.Batch != len(e.Nodes) {
				violate("batch-mismatch", -1, "task event batch=%d but %d rows", e.Batch, len(e.Nodes))
			}
			if e.Batch > res.MaxBatch {
				violate("batch-overflow", -1, "task of %d rows exceeds MaxBatch %d", e.Batch, res.MaxBatch)
			}
			tracedCells += len(e.Nodes)
			for _, ref := range e.Nodes {
				idx, ok := res.RevIDs[ref.Req]
				if !ok {
					violate("ghost-row", -1, "task executed row of unknown request id %d", ref.Req)
					continue
				}
				d := deps[idx]
				if d == nil {
					continue // rebuild failed, already reported
				}
				if int(ref.Node) < 0 || int(ref.Node) >= len(d) {
					violate("node-range", idx, "node %d out of range [0,%d)", ref.Node, len(d))
					continue
				}
				done := executed[idx]
				if done == nil {
					done = make(map[cellgraph.NodeID]bool)
					executed[idx] = done
				}
				if done[ref.Node] {
					violate("duplicate-exec", idx, "node %d executed twice", ref.Node)
				}
				// Dependency order: every producer must already be executed
				// — i.e. appear in a strictly earlier trace event. Rows of
				// one event never depend on each other (ready sets contain
				// no dependent pairs), so checking before marking is exact.
				for _, dep := range d[ref.Node] {
					if !done[dep] {
						violate("dependency-order", idx, "node %d executed before its dependency %d", ref.Node, dep)
					}
				}
				done[ref.Node] = true
			}
		}
	}
	if tracedCells != res.Stats.CellsRun {
		violate("counter-mismatch", -1, "trace shows %d executed cells, stats counted %d", tracedCells, res.Stats.CellsRun)
	}

	// Lifecycle: exactly one admit and one terminal event per admitted
	// request, terminal kind matching the caller-observed outcome.
	wantKind := map[Outcome]server.EventKind{
		OutcomeCompleted: server.EventComplete,
		OutcomeFailed:    server.EventFail,
		OutcomeExpired:   server.EventExpire,
		OutcomeCancelled: server.EventCancel,
	}
	idxs := make([]int, 0, len(res.IDs))
	for idx := range res.IDs {
		idxs = append(idxs, idx)
	}
	sort.Ints(idxs)
	for _, idx := range idxs {
		id := res.IDs[idx]
		if n := admits[id]; n != 1 {
			violate("lifecycle", idx, "%d admit events (want 1)", n)
		}
		ts := terminals[id]
		if len(ts) != 1 {
			violate("lifecycle", idx, "%d terminal events %v (want 1)", len(ts), ts)
			continue
		}
		if want := wantKind[res.Outcome[idx]]; ts[0] != want {
			violate("lifecycle", idx, "terminal event %v but caller observed %v", ts[0], res.Outcome[idx])
		}
		// Completed requests must have executed their entire graph.
		if res.Outcome[idx] == OutcomeCompleted && len(executed[idx]) != cells[idx] {
			violate("conservation", idx, "completed with %d/%d cells executed", len(executed[idx]), cells[idx])
		}
	}
	// Requests never admitted must not appear in the trace at all.
	for id := range admits {
		if _, ok := res.RevIDs[id]; !ok {
			violate("ghost-request", -1, "trace admits unknown request id %d", id)
		}
	}
	return vs
}
