package conformance

import (
	"fmt"
	"sort"
	"time"

	"batchmaker/internal/cellgraph"
	"batchmaker/internal/core"
	"batchmaker/internal/device"
	"batchmaker/internal/sim"
)

// SimOpts configures one virtual-clock conformance run. The defaults mirror
// LiveOpts so the two engines schedule the same workload comparably.
type SimOpts struct {
	Workers          int
	MaxBatch         int
	MaxTasksToSubmit int
}

func (o SimOpts) withDefaults() SimOpts {
	if o.Workers <= 0 {
		o.Workers = 2
	}
	if o.MaxBatch <= 0 {
		o.MaxBatch = 8
	}
	if o.MaxTasksToSubmit <= 0 {
		o.MaxTasksToSubmit = 3
	}
	return o
}

// SimResult is one deterministic virtual-time run: the full event timeline
// (identical across runs of the same workload — that is the determinism
// test), per-request outcomes, and any invariant violations observed while
// the schedule unfolded.
type SimResult struct {
	// Events is the virtual-time event log, in firing order.
	Events []string
	// Outcome and Executed are keyed by workload request Index; requests
	// still live when the engine drained appear in neither.
	Outcome  map[int]Outcome
	Executed map[int]int
	// Finish records virtual completion times of completed requests.
	Finish map[int]time.Duration
	// Violations lists invariant breaches observed during the run.
	Violations []Violation
	// Clean reports whether the scheduler's gauges drained to zero.
	Clean bool
}

// simReq is the simulator's view of one workload request.
type simReq struct {
	idx      int
	kind     sim.RequestKind
	cells    int
	tracker  *core.Tracker
	live     bool
	executed map[cellgraph.NodeID]bool
	// inflight counts this request's in-flight rows per worker, for the
	// pinning invariant (chains and seq2seq run on one worker at a time).
	inflight map[core.WorkerID]int
}

type simRun struct {
	m     *Model
	opts  SimOpts
	eng   *sim.Engine
	sched *core.Scheduler
	gpus  []*device.GPU
	// inflightTasks counts queued-or-running tasks per worker; a worker asks
	// for more work when its stream drains (the live engine's pull model).
	inflightTasks []int
	over          device.Overheads
	costs         *device.CostModel
	byID          map[core.RequestID]*simReq
	nextID        core.RequestID
	res           *SimResult
}

// RunSim replays the workload on a discrete-event copy of the serving stack:
// the real scheduler (internal/core), the real dependency tracker, and the
// real unfolded graphs, but with a virtual clock and simulated GPU streams.
// Same model + workload + opts ⇒ byte-identical Events.
func RunSim(m *Model, w *Workload, opts SimOpts) (*SimResult, error) {
	opts = opts.withDefaults()
	sched, err := core.NewScheduler(core.Config{
		Types: []core.TypeConfig{
			{Key: m.LSTM.TypeKey(), MaxBatch: opts.MaxBatch},
			{Key: m.Enc.TypeKey(), MaxBatch: opts.MaxBatch, Priority: 0},
			{Key: m.Dec.TypeKey(), MaxBatch: opts.MaxBatch, Priority: 1},
			{Key: m.Leaf.TypeKey(), MaxBatch: opts.MaxBatch, Priority: 0},
			{Key: m.Internal.TypeKey(), MaxBatch: opts.MaxBatch, Priority: 1},
		},
		MaxTasksToSubmit: opts.MaxTasksToSubmit,
	})
	if err != nil {
		return nil, err
	}
	costs := device.NewCostModel()
	costs.SetCurve(m.LSTM.TypeKey(), device.LSTMGPUCurve())
	costs.SetCurve(m.Enc.TypeKey(), device.LSTMGPUCurve())
	costs.SetCurve(m.Dec.TypeKey(), device.DecoderGPUCurve())
	costs.SetCurve(m.Leaf.TypeKey(), device.TreeLeafGPUCurve())
	costs.SetCurve(m.Internal.TypeKey(), device.LSTMGPUCurve())
	s := &simRun{
		m:             m,
		opts:          opts,
		eng:           sim.NewEngine(),
		sched:         sched,
		gpus:          make([]*device.GPU, opts.Workers),
		inflightTasks: make([]int, opts.Workers),
		over:          device.DefaultOverheads(),
		costs:         costs,
		byID:          make(map[core.RequestID]*simReq),
		res: &SimResult{
			Outcome:  make(map[int]Outcome, len(w.Reqs)),
			Executed: make(map[int]int, len(w.Reqs)),
			Finish:   make(map[int]time.Duration, len(w.Reqs)),
		},
	}
	for i := range s.gpus {
		s.gpus[i] = &device.GPU{ID: i}
	}
	for _, r := range w.Reqs {
		r := r
		s.eng.At(r.Arrival, func() { s.admit(r) })
	}
	for s.eng.Step() {
	}

	// End-of-run conservation: every admitted request must have reached a
	// terminal state, and the scheduler must have drained clean.
	var stuck []int
	for _, sr := range s.byID {
		if sr.live {
			stuck = append(stuck, sr.idx)
		}
	}
	sort.Ints(stuck)
	for _, idx := range stuck {
		s.violate("sim-wedge", idx, "engine drained with request still live")
	}
	s.res.Clean = s.sched.LiveSubgraphs() == 0 && s.sched.TotalReady() == 0 && s.sched.InflightTasks() == 0
	if !s.res.Clean {
		s.violate("sim-unclean", -1,
			fmt.Sprintf("scheduler not drained: live=%d ready=%d inflight=%d",
				s.sched.LiveSubgraphs(), s.sched.TotalReady(), s.sched.InflightTasks()))
	}
	for idx, out := range s.res.Outcome {
		if out == OutcomeCompleted && s.res.Executed[idx] != w.Reqs[posOf(w, idx)].Cells() {
			s.violate("sim-conservation", idx,
				fmt.Sprintf("completed with %d/%d cells executed", s.res.Executed[idx], w.Reqs[posOf(w, idx)].Cells()))
		}
	}
	return s.res, nil
}

// posOf maps an original request Index back to its position in w.Reqs.
func posOf(w *Workload, idx int) int {
	for i, r := range w.Reqs {
		if r.Index == idx {
			return i
		}
	}
	return -1
}

func (s *simRun) logf(format string, a ...interface{}) {
	s.res.Events = append(s.res.Events, fmt.Sprintf("t=%-12v ", s.eng.Now())+fmt.Sprintf(format, a...))
}

func (s *simRun) violate(kind string, idx int, detail string) {
	s.res.Violations = append(s.res.Violations, Violation{Kind: kind, Req: idx, Detail: detail})
}

func (s *simRun) admit(r *Request) {
	g, err := s.m.BuildGraph(r)
	if err != nil {
		s.violate("sim-build", r.Index, err.Error())
		return
	}
	s.nextID++
	id := s.nextID
	tr, err := core.NewTracker(id, g)
	if err != nil {
		s.violate("sim-tracker", r.Index, err.Error())
		return
	}
	sr := &simReq{
		idx:      r.Index,
		kind:     r.Shape.Kind,
		cells:    r.Cells(),
		tracker:  tr,
		live:     true,
		executed: make(map[cellgraph.NodeID]bool, r.Cells()),
		inflight: make(map[core.WorkerID]int),
	}
	s.byID[id] = sr
	s.logf("admit req=%d cells=%d", r.Index, sr.cells)
	for _, spec := range tr.InitialSubgraphs() {
		if _, err := s.sched.AddSubgraph(spec); err != nil {
			s.violate("sim-add", r.Index, err.Error())
			return
		}
	}
	if r.CancelAfter > 0 {
		s.eng.At(r.Arrival+r.CancelAfter, func() { s.terminate(id, OutcomeCancelled) })
	}
	if r.Deadline > 0 {
		s.eng.At(r.Arrival+r.Deadline, func() { s.terminate(id, OutcomeExpired) })
	}
	s.kickIdleWorkers()
}

// terminate resolves a live request early (cancellation or deadline expiry).
func (s *simRun) terminate(id core.RequestID, out Outcome) {
	sr := s.byID[id]
	if sr == nil || !sr.live {
		return
	}
	sr.live = false
	s.res.Outcome[sr.idx] = out
	s.sched.CancelRequest(id)
	s.logf("%s req=%d", out, sr.idx)
	// Cancellation frees no new work, but the end-of-run wedge check needs
	// the queues re-examined if this was the last live request.
	s.kickIdleWorkers()
}

// kickIdleWorkers offers work to every drained worker stream, then applies
// the non-starvation invariant: if every worker is idle and ready work
// remains, the scheduler just refused to schedule anything — a wedge.
func (s *simRun) kickIdleWorkers() {
	for w := range s.gpus {
		if s.inflightTasks[w] == 0 {
			s.scheduleWorker(core.WorkerID(w))
		}
	}
	allIdle := true
	for w := range s.gpus {
		if s.inflightTasks[w] > 0 {
			allIdle = false
		}
	}
	if allIdle && s.sched.TotalReady() > 0 {
		s.violate("sim-starvation", -1,
			fmt.Sprintf("all workers idle with %d ready nodes unscheduled", s.sched.TotalReady()))
	}
}

func (s *simRun) scheduleWorker(w core.WorkerID) {
	tasks := s.sched.Schedule(w)
	for _, task := range tasks {
		b := task.BatchSize()
		if b > s.opts.MaxBatch {
			s.violate("sim-batch", -1, fmt.Sprintf("task of %d rows exceeds MaxBatch %d", b, s.opts.MaxBatch))
		}
		rows := make([]string, 0, b)
		for _, ref := range task.Nodes {
			sr := s.byID[ref.Req]
			if sr == nil {
				s.violate("sim-unknown-req", -1, fmt.Sprintf("task names unknown request %d", ref.Req))
				continue
			}
			rows = append(rows, fmt.Sprintf("%d/%d", sr.idx, ref.Node))
			if !sr.live {
				continue
			}
			if sr.executed[ref.Node] {
				s.violate("sim-duplicate", sr.idx, fmt.Sprintf("node %d issued twice", ref.Node))
			}
			sr.executed[ref.Node] = true
			s.res.Executed[sr.idx]++
			// Pinning: a chain or seq2seq request is one sequential subgraph
			// per segment, so its rows must never be in flight on two
			// workers at once (§4.3's same-stream FIFO argument).
			if sr.kind != sim.KindTree {
				for ow, n := range sr.inflight {
					if ow != w && n > 0 {
						s.violate("sim-pin", sr.idx,
							fmt.Sprintf("rows in flight on workers %d and %d", ow, w))
					}
				}
			}
			sr.inflight[w]++
		}
		s.logf("task worker=%d type=%s batch=%d rows=%v", w, task.TypeKey, b, rows)
		dur := s.over.PerTask(b) + s.costs.KernelTime(task.TypeKey, b)
		_, end := s.gpus[w].Submit(s.eng.Now(), dur)
		s.inflightTasks[w]++
		t := task
		s.eng.At(end+s.over.CompletionPoll, func() { s.onTaskDone(w, t) })
	}
}

func (s *simRun) onTaskDone(w core.WorkerID, task *core.Task) {
	for _, ref := range task.Nodes {
		sr := s.byID[ref.Req]
		if sr == nil || !sr.live {
			// Dead rows are skipped, mirroring the live worker; the
			// scheduler's own cancel bookkeeping retires their subgraphs.
			continue
		}
		sr.inflight[w]--
		released, err := sr.tracker.NodeDone(ref.Node)
		if err != nil {
			s.violate("sim-tracker", sr.idx, err.Error())
			continue
		}
		for _, spec := range released {
			if _, err := s.sched.AddSubgraph(spec); err != nil {
				s.violate("sim-add", sr.idx, err.Error())
			}
		}
		if sr.tracker.Finished() {
			sr.live = false
			s.res.Outcome[sr.idx] = OutcomeCompleted
			s.res.Finish[sr.idx] = s.eng.Now()
			s.logf("complete req=%d", sr.idx)
		}
	}
	if err := s.sched.TaskCompleted(task.ID); err != nil {
		s.violate("sim-complete", -1, err.Error())
	}
	s.inflightTasks[w]--
	s.kickIdleWorkers()
}
