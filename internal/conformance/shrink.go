package conformance

import (
	"encoding/json"
	"fmt"
	"os"
)

// maxShrinkRuns bounds how many candidate workloads Shrink may evaluate —
// each evaluation is a full live run, so the budget keeps shrinking fast
// even for large workloads. The result is still failing, just possibly not
// 1-minimal when the budget is hit.
const maxShrinkRuns = 160

// Shrink reduces a failing workload to a small one that still fails, using
// ddmin over the request list: repeatedly try dropping chunks (halves, then
// quarters, …, then single requests) and keep any reduction that preserves
// the failure. fails must report whether a candidate workload still triggers
// the violation; it is called up to maxShrinkRuns times. The input workload
// must itself fail (fails(w) == true) for the result to be meaningful.
func Shrink(w *Workload, fails func(*Workload) bool) *Workload {
	cur := w
	runs := 0
	try := func(c *Workload) bool {
		if runs >= maxShrinkRuns {
			return false
		}
		runs++
		return fails(c)
	}
	n := 2
	for len(cur.Reqs) >= 2 && runs < maxShrinkRuns {
		chunk := (len(cur.Reqs) + n - 1) / n
		reduced := false
		for start := 0; start < len(cur.Reqs); start += chunk {
			end := start + chunk
			if end > len(cur.Reqs) {
				end = len(cur.Reqs)
			}
			// Candidate: everything except [start, end).
			keep := make([]int, 0, len(cur.Reqs)-(end-start))
			for i := 0; i < len(cur.Reqs); i++ {
				if i < start || i >= end {
					keep = append(keep, i)
				}
			}
			if len(keep) == 0 {
				continue
			}
			c := cur.Subset(keep)
			if try(c) {
				cur = c
				n = max2(n-1, 2)
				reduced = true
				break
			}
		}
		if !reduced {
			if chunk <= 1 {
				break
			}
			n = min2(2*n, len(cur.Reqs))
		}
	}
	return cur
}

func max2(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func min2(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Repro is a self-contained failing-workload file: the model seed plus the
// materialized requests fully determine every tensor and every schedule
// decision of a replay, so no generator state needs to survive.
type Repro struct {
	// ModelSeed rebuilds the cell weights.
	ModelSeed uint64 `json:"model_seed"`
	// Seed and Cfg record where the workload came from (bookkeeping only —
	// Reqs is authoritative).
	Seed uint64    `json:"seed"`
	Cfg  GenConfig `json:"cfg"`
	// Reqs is the shrunk request list.
	Reqs []*Request `json:"reqs"`
	// Violations snapshots what the original run reported.
	Violations []string `json:"violations"`
}

// WriteRepro saves a shrunk failing workload for later replay with
//
//	go test ./internal/conformance -run TestConformanceReplay -repro=<path>
func WriteRepro(path string, m *Model, w *Workload, vs []Violation) error {
	r := Repro{ModelSeed: m.Seed, Seed: w.Seed, Cfg: w.Cfg, Reqs: w.Reqs}
	for _, v := range vs {
		r.Violations = append(r.Violations, v.String())
	}
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return fmt.Errorf("conformance: marshal repro: %w", err)
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadRepro reads a repro file back into a model and workload.
func LoadRepro(path string) (*Model, *Workload, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, fmt.Errorf("conformance: read repro: %w", err)
	}
	var r Repro
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, nil, fmt.Errorf("conformance: parse repro %s: %w", path, err)
	}
	if len(r.Reqs) == 0 {
		return nil, nil, fmt.Errorf("conformance: repro %s has no requests", path)
	}
	m := NewModel(r.ModelSeed)
	w := &Workload{Seed: r.Seed, Cfg: r.Cfg, Reqs: r.Reqs}
	return m, w, nil
}
