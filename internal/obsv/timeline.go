package obsv

import (
	"encoding/json"
	"io"
	"sort"
)

// TimelineEvent is one step in a request's reconstructed history.
type TimelineEvent struct {
	Kind string `json:"kind"`
	// T is the event time in unix nanoseconds.
	T int64 `json:"t_unix_ns"`
	// SinceAdmitNs is T relative to the request's admit record. It is
	// omitted (never negative) in exactly two cases: on the admit event
	// itself (where it would be 0), and on every event of a timeline whose
	// admit record was overwritten in the bounded ring — a terminal with
	// no admit means the request outlived the ring's retention, not that
	// it was never admitted (see Timeline.SinceAdmitOmitted).
	SinceAdmitNs int64 `json:"since_admit_ns,omitempty"`
	// Worker and Device identify the executing lane for first_exec events
	// (pointers so worker/device 0 is distinguishable from "not an exec
	// event").
	Worker *int `json:"worker,omitempty"`
	Device *int `json:"device,omitempty"`
	// Batch is the live batch size of the task that first executed this
	// request (first_exec events; 0 when the writer predates batch
	// stamping).
	Batch int `json:"batch,omitempty"`
}

// Timeline is one request's reconstructed admit→…→terminal history,
// rebuilt from the lifecycle records retained in the span rings.
type Timeline struct {
	Req    int64           `json:"req"`
	Events []TimelineEvent `json:"events"`
	// Outcome is the terminal event's kind ("" while still in flight or if
	// the terminal record was overwritten).
	Outcome string `json:"outcome,omitempty"`
	// QueuingNs / ComputationNs are the paper's latency split, present
	// when the admit, first-exec, and terminal records were all retained.
	QueuingNs     int64 `json:"queuing_ns,omitempty"`
	ComputationNs int64 `json:"computation_ns,omitempty"`
	// SinceAdmitOmitted explains why the events carry no since_admit_ns:
	// "admit_overwritten" when the ring's drop-oldest overwrite discarded
	// the admit record before reconstruction. Empty when the admit was
	// retained.
	SinceAdmitOmitted string `json:"since_admit_omitted,omitempty"`
}

func isTerminal(k Kind) bool {
	switch k {
	case KindComplete, KindFail, KindExpire, KindCancel:
		return true
	}
	return false
}

// Timelines reconstructs per-request timelines from the observer's rings,
// most recently admitted first, at most limit requests (<=0 means all
// retained). Only lifecycle records participate; span records (dispatch,
// task exec) describe batches spanning many requests and are exposed via
// metrics instead.
func (o *Observer) Timelines(limit int) []*Timeline {
	byReq := make(map[int64]*Timeline)
	var order []int64
	for _, rec := range o.Snapshot() {
		switch rec.Kind {
		case KindAdmit, KindFirstExec, KindComplete, KindFail, KindExpire, KindCancel:
		default:
			continue
		}
		if rec.Req == 0 {
			continue
		}
		tl := byReq[rec.Req]
		if tl == nil {
			tl = &Timeline{Req: rec.Req}
			byReq[rec.Req] = tl
			order = append(order, rec.Req)
		}
		ev := TimelineEvent{Kind: rec.Kind.String(), T: rec.T0}
		if rec.Kind == KindFirstExec {
			w, d := int(rec.Worker), int(rec.Device)
			ev.Worker, ev.Device = &w, &d
			ev.Batch = int(rec.Batch)
		}
		tl.Events = append(tl.Events, ev)
		if isTerminal(rec.Kind) {
			tl.Outcome = rec.Kind.String()
		}
	}
	for _, tl := range byReq {
		sort.SliceStable(tl.Events, func(i, j int) bool { return tl.Events[i].T < tl.Events[j].T })
		var admit, firstExec, terminal int64
		for i := range tl.Events {
			e := &tl.Events[i]
			switch e.Kind {
			case KindAdmit.String():
				if admit == 0 {
					admit = e.T
				}
			case KindFirstExec.String():
				if firstExec == 0 {
					firstExec = e.T
				}
			default:
				terminal = e.T
			}
			if admit != 0 {
				e.SinceAdmitNs = e.T - admit
			}
		}
		if admit != 0 && firstExec != 0 {
			tl.QueuingNs = firstExec - admit
			if terminal != 0 {
				tl.ComputationNs = terminal - firstExec
			}
		}
		if admit == 0 {
			tl.SinceAdmitOmitted = "admit_overwritten"
		}
	}
	// Most recently admitted first: order holds first-seen order of the
	// time-sorted snapshot, so reversing it puts newest requests first.
	sort.SliceStable(order, func(i, j int) bool {
		return firstEventT(byReq[order[i]]) > firstEventT(byReq[order[j]])
	})
	if limit > 0 && len(order) > limit {
		order = order[:limit]
	}
	out := make([]*Timeline, len(order))
	for i, id := range order {
		out[i] = byReq[id]
	}
	return out
}

func firstEventT(tl *Timeline) int64 {
	if len(tl.Events) == 0 {
		return 0
	}
	return tl.Events[0].T
}

// WriteRequestsJSONL renders up to limit reconstructed request timelines
// as one JSON object per line (newest request first).
func (o *Observer) WriteRequestsJSONL(w io.Writer, limit int) error {
	enc := json.NewEncoder(w)
	for _, tl := range o.Timelines(limit) {
		if err := enc.Encode(tl); err != nil {
			return err
		}
	}
	return nil
}
