package obsv

import (
	"sync/atomic"
	"time"
)

// SLO metric family names. Like the policy families, they only appear in
// the exposition when an SLO engine is actually wired, so deployments
// without an SLO target keep the golden exposition unchanged.
const (
	MetricSLOObjective       = "batchmaker_slo_objective"
	MetricSLOGood            = "batchmaker_slo_good_total"
	MetricSLOBad             = "batchmaker_slo_bad_total"
	MetricSLOBurnRate        = "batchmaker_slo_burn_rate"
	MetricSLOBudgetRemaining = "batchmaker_slo_budget_remaining"
)

// SLO burn-rate windows (the classic multi-window pair: the short window
// catches fast burns, the long window keeps the alert from flapping once
// the incident ends).
const (
	SLOShortWindow = 5 * time.Minute
	SLOLongWindow  = time.Hour
)

// sloBucket is one second of good/bad counts. sec tags which absolute
// second the bucket currently holds so stale buckets are skipped by
// readers and lazily reset by the writer.
type sloBucket struct {
	sec  atomic.Int64
	good atomic.Int64
	bad  atomic.Int64
}

// SLOEngine tracks multi-window error-budget burn over request outcomes.
// An event is "bad" when the request failed/expired or completed over the
// latency target. Observe is single-writer (the request processor);
// BurnRate/Totals may be called concurrently from the detector and the
// metrics collector.
//
// Burn rate is (bad/total)/(1-objective) over a trailing window: 1.0 means
// the error budget is being consumed exactly at the sustainable rate,
// above 1.0 the budget runs out before the period does.
type SLOEngine struct {
	objective float64
	targetNs  int64
	buckets   []sloBucket // one per second, covering SLOLongWindow
}

// NewSLOEngine builds an engine with the given availability objective
// (e.g. 0.999) and latency target. objective is clamped to [0.5, 0.99999];
// a zero latency target means only terminal outcomes count against the
// budget. Registers the batchmaker_slo_* families in reg (nil reg keeps
// the engine usable without exposition).
func NewSLOEngine(reg *Registry, objective float64, target time.Duration) *SLOEngine {
	if objective < 0.5 {
		objective = 0.5
	}
	if objective > 0.99999 {
		objective = 0.99999
	}
	e := &SLOEngine{
		objective: objective,
		targetNs:  int64(target),
		buckets:   make([]sloBucket, int(SLOLongWindow/time.Second)),
	}
	if reg != nil {
		obj := reg.FloatGauge(MetricSLOObjective,
			"Configured SLO availability objective.")
		obj.Set(objective)
		good := reg.GaugeVec(MetricSLOGood,
			"Requests inside the SLO over the trailing window.",
			[]string{"window"}, []string{"1h"})
		bad := reg.GaugeVec(MetricSLOBad,
			"Requests outside the SLO over the trailing window.",
			[]string{"window"}, []string{"1h"})
		burn5 := reg.FloatGaugeVec(MetricSLOBurnRate,
			"Error-budget burn rate (1.0 = sustainable).",
			[]string{"window"}, []string{"5m"})
		burn1h := reg.FloatGaugeVec(MetricSLOBurnRate,
			"Error-budget burn rate (1.0 = sustainable).",
			[]string{"window"}, []string{"1h"})
		rem := reg.FloatGaugeVec(MetricSLOBudgetRemaining,
			"Fraction of the error budget left over the trailing window.",
			[]string{"window"}, []string{"1h"})
		reg.AddCollector(func() {
			now := time.Now().UnixNano()
			g, b := e.Totals(SLOLongWindow, now)
			good.Set(g)
			bad.Set(b)
			burn5.Set(e.BurnRate(SLOShortWindow, now))
			lb := e.BurnRate(SLOLongWindow, now)
			burn1h.Set(lb)
			rem.Set(1 - lb)
		})
	}
	return e
}

// Objective returns the configured availability objective.
func (e *SLOEngine) Objective() float64 {
	if e == nil {
		return 0
	}
	return e.objective
}

// TargetNs returns the latency target in nanoseconds (0 if unset).
func (e *SLOEngine) TargetNs() int64 {
	if e == nil {
		return 0
	}
	return e.targetNs
}

// Observe records one terminal request outcome. ok is the transport-level
// verdict (completed vs failed/expired); latency is checked against the
// target for completed requests. Allocation-free and lock-free — safe on
// the request-processor goroutine.
func (e *SLOEngine) Observe(latencyNs int64, ok bool, nowNs int64) {
	if e == nil {
		return
	}
	bad := !ok || (e.targetNs > 0 && latencyNs > e.targetNs)
	sec := nowNs / int64(time.Second)
	b := &e.buckets[int(sec)%len(e.buckets)]
	if b.sec.Load() != sec {
		// Single-writer: reset the recycled bucket for the new second.
		// Readers observing the intermediate state at worst misattribute
		// one event — acceptable for a trailing-window estimate.
		b.good.Store(0)
		b.bad.Store(0)
		b.sec.Store(sec)
	}
	if bad {
		b.bad.Add(1)
	} else {
		b.good.Add(1)
	}
}

// Totals returns the good/bad counts over the trailing window ending at
// nowNs.
func (e *SLOEngine) Totals(window time.Duration, nowNs int64) (good, bad int64) {
	if e == nil {
		return 0, 0
	}
	nowSec := nowNs / int64(time.Second)
	span := int64(window / time.Second)
	if span > int64(len(e.buckets)) {
		span = int64(len(e.buckets))
	}
	for i := int64(0); i < span; i++ {
		sec := nowSec - i
		b := &e.buckets[int(sec)%len(e.buckets)]
		if b.sec.Load() != sec {
			continue // stale or never-written bucket
		}
		good += b.good.Load()
		bad += b.bad.Load()
	}
	return good, bad
}

// BurnRate returns the error-budget burn rate over the trailing window
// (0 when the window saw no traffic).
func (e *SLOEngine) BurnRate(window time.Duration, nowNs int64) float64 {
	if e == nil {
		return 0
	}
	good, bad := e.Totals(window, nowNs)
	total := good + bad
	if total == 0 {
		return 0
	}
	budget := 1 - e.objective
	return (float64(bad) / float64(total)) / budget
}

// Breached reports the multi-window burn alert: both the fast (5m) and
// slow (1h) windows must burn above 1.0, so a brief spike that the hour
// absorbs does not page, and a long slow burn does.
func (e *SLOEngine) Breached(nowNs int64) bool {
	if e == nil {
		return false
	}
	return e.BurnRate(SLOShortWindow, nowNs) > 1 &&
		e.BurnRate(SLOLongWindow, nowNs) > 1
}
