// Package obsv is the serving stack's observability layer: allocation-free
// span/event rings written from the hot path, a registry of counters /
// gauges / histograms / windowed quantiles rendered in Prometheus text
// format, and request-timeline reconstruction for the /debug/requests
// introspection endpoint.
//
// Design constraints, in order:
//
//  1. The hot path (worker exec loop, scheduler loop, request processor)
//     must not allocate and must not take locks to record events. Rings are
//     single-writer with per-slot atomic sequence counters; metric cells
//     are plain atomics.
//  2. Everything is nil-safe: a server built with observability disabled
//     passes nil handles around and every method degrades to a no-op, so
//     instrumented code has no "is tracing on" branches.
//  3. The same metric families are produced by the live server and the
//     virtual-time sim/conformance runners, so the paper's evaluation
//     signals (queuing vs computation latency, batch occupancy, padding
//     waste) are comparable across both.
package obsv

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Observer owns the span rings and the sampling gate, and maps cell-type
// strings to the compact IDs stored in ring records. One Observer serves
// one engine instance (server or sim run).
type Observer struct {
	// Metrics is the engine's serving-metric handles (may be an inert
	// instance; never nil on a non-nil Observer built by NewObserver).
	Metrics *ServingMetrics

	// sample is the span sampling interval: 1 records every span record,
	// n>1 every nth per ring, 0 disables span records entirely. Request
	// lifecycle records (admit/terminal) always bypass sampling so
	// /debug/requests timelines stay complete.
	sample atomic.Int64

	ringCap int

	mu      sync.Mutex
	rings   []*Ring
	types   map[string]uint16
	names   []string // index = type ID
	details map[uint16]TypeDetail
}

// TypeDetail carries per-cell-type annotations resolved at trace-assembly
// time: the configured batch bound (for occupancy/padding) and the
// execution precision tier.
type TypeDetail struct {
	MaxBatch  int
	Precision string
}

// NewObserver builds an Observer over reg (nil reg yields inert metrics —
// still usable, nothing retained). ringCap sizes each per-writer ring
// (<=0 means DefaultRingCapacity). sample seeds the sampling gate
// (0 means record every span; pass a negative value to disable spans).
func NewObserver(reg *Registry, ringCap, sample int) *Observer {
	o := &Observer{
		Metrics: NewServingMetrics(reg),
		ringCap: ringCap,
		types:   make(map[string]uint16),
		names:   []string{"?"}, // ID 0 = unknown
		details: make(map[uint16]TypeDetail),
	}
	if sample == 0 {
		sample = 1
	}
	if sample < 0 {
		sample = 0
	}
	o.sample.Store(int64(sample))
	reg.AddCollector(o.refreshRingGauges)
	return o
}

// refreshRingGauges mirrors each ring's written/dropped counters into the
// registry at exposition time.
func (o *Observer) refreshRingGauges() {
	reg := o.Metrics.Registry()
	for _, r := range o.Rings() {
		label := []string{r.Name()}
		reg.GaugeVec(MetricSpanWritten, "Span records written to the ring.",
			[]string{"ring"}, label).Set(int64(r.Total()))
		reg.GaugeVec(MetricSpanDropped, "Span records overwritten before retention.",
			[]string{"ring"}, label).Set(int64(r.Dropped()))
	}
}

// SetSampling updates the span sampling interval: 1 records everything,
// n>1 every nth span record per ring, 0 disables span records. Lifecycle
// records are unaffected.
func (o *Observer) SetSampling(n int) {
	if o == nil {
		return
	}
	if n < 0 {
		n = 0
	}
	o.sample.Store(int64(n))
}

// Sampling returns the current span sampling interval.
func (o *Observer) Sampling() int {
	if o == nil {
		return 0
	}
	return int(o.sample.Load())
}

// NewRing creates, registers, and returns a span ring for one writer
// goroutine (e.g. "worker-3"). Returns nil (a valid no-op ring) on a nil
// Observer.
func (o *Observer) NewRing(name string) *Ring {
	if o == nil {
		return nil
	}
	r := NewRing(name, o.ringCap)
	o.mu.Lock()
	o.rings = append(o.rings, r)
	o.mu.Unlock()
	return r
}

// AdoptRing registers an externally created ring (obsv.NewRing) with this
// observer so snapshots, gauges, and trace assembly include it. Used when a
// ring's writer starts before the observer exists — e.g. the journal's
// flush/sync loops, which open before the server builds its observer. A nil
// ring is ignored.
func (o *Observer) AdoptRing(r *Ring) {
	if o == nil || r == nil {
		return
	}
	o.mu.Lock()
	o.rings = append(o.rings, r)
	o.mu.Unlock()
}

// SampleSpan reports whether the next span record on ring r should be
// written, advancing r's writer-owned sampling counter. Lifecycle records
// must NOT consult this — they are always written.
func (o *Observer) SampleSpan(r *Ring) bool {
	if o == nil || r == nil {
		return false
	}
	n := o.sample.Load()
	if n == 0 {
		return false
	}
	if n == 1 {
		return true
	}
	r.tick++
	return r.tick%uint64(n) == 0
}

// InternType maps a cell-type key to the compact ID stored in ring
// records, registering it on first use. Call at setup, not per event.
func (o *Observer) InternType(key string) uint16 {
	if o == nil {
		return 0
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	if id, ok := o.types[key]; ok {
		return id
	}
	id := uint16(len(o.names))
	o.types[key] = id
	o.names = append(o.names, key)
	return id
}

// SetTypeDetail attaches trace annotations (batch bound, precision tier)
// to a cell type, interning it if needed. Call at setup, not per event.
func (o *Observer) SetTypeDetail(key string, d TypeDetail) {
	if o == nil {
		return
	}
	id := o.InternType(key)
	o.mu.Lock()
	o.details[id] = d
	o.mu.Unlock()
}

// TypeDetailFor resolves a type ID's trace annotations (zero value if none
// were registered).
func (o *Observer) TypeDetailFor(id uint16) TypeDetail {
	if o == nil {
		return TypeDetail{}
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.details[id]
}

// TypeName resolves an interned type ID back to its key ("?" if unknown).
func (o *Observer) TypeName(id uint16) string {
	if o == nil {
		return "?"
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	if int(id) < len(o.names) {
		return o.names[id]
	}
	return "?"
}

// Rings returns the registered rings (snapshot of the list).
func (o *Observer) Rings() []*Ring {
	if o == nil {
		return nil
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	rs := make([]*Ring, len(o.rings))
	copy(rs, o.rings)
	return rs
}

// Snapshot drains every ring into one slice ordered by primary timestamp
// (stable across rings), for timeline reconstruction.
func (o *Observer) Snapshot() []Record {
	var recs []Record
	for _, r := range o.Rings() {
		recs = r.Snapshot(recs)
	}
	sort.SliceStable(recs, func(i, j int) bool { return recs[i].T0 < recs[j].T0 })
	return recs
}
