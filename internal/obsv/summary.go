package obsv

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// WriteSummary renders the one-screen observability summary printed by
// `batchmaker -demo` and at serve-mode shutdown: request outcomes, the
// paper's queuing/computation latency split, the batch-occupancy
// histogram, and the top cell types by cells executed.
func (m *ServingMetrics) WriteSummary(w io.Writer) {
	if m == nil {
		fmt.Fprintln(w, "observability disabled")
		return
	}
	m.reg.collect()

	fmt.Fprintln(w, "── observability summary ──────────────────────────────")
	fmt.Fprintf(w, "requests: admitted=%d completed=%d failed=%d rejected=%d expired=%d cancelled=%d\n",
		m.Admitted.Value(), m.Completed.Value(), m.Failed.Value(),
		m.Rejected.Value(), m.Expired.Value(), m.Cancelled.Value())
	fmt.Fprintf(w, "faults:   retries=%d recovered_panics=%d\n",
		m.Retries.Value(), m.Panics.Value())

	_, qv := m.Queuing.Query()
	_, cv := m.Computation.Query()
	if m.Queuing.Count() > 0 {
		fmt.Fprintf(w, "latency split (windowed): queuing p50=%v p90=%v p99=%v | computation p50=%v p90=%v p99=%v\n",
			round(qv[0]), round(qv[1]), round(qv[2]), round(cv[0]), round(cv[1]), round(cv[2]))
	}

	if n := m.BatchOccupancy.Count(); n > 0 {
		fmt.Fprintf(w, "batch occupancy (%d tasks, padding waste %.1f%%):\n",
			n, 100*m.PaddingWaste.Value())
		bounds, cum := m.BatchOccupancy.Buckets()
		prev := int64(0)
		lo := int64(1)
		for i, ub := range bounds {
			cnt := cum[i] - prev
			prev = cum[i]
			if cnt > 0 {
				fmt.Fprintf(w, "  %4d-%-4d %6d %s\n", lo, ub, cnt, bar(cnt, n))
			}
			lo = ub + 1
		}
		if inf := n - prev; inf > 0 {
			fmt.Fprintf(w, "  %4d+     %6d %s\n", lo, inf, bar(inf, n))
		}
	}

	if stats := m.TypesByCells(); len(stats) > 0 {
		fmt.Fprintln(w, "top cell types by cells executed:")
		for i, s := range stats {
			if i == 5 {
				break
			}
			fmt.Fprintf(w, "  %-16s cells=%-9d tasks=%d\n", s.Key, s.Cells, s.Tasks)
		}
	}
	fmt.Fprintln(w, "───────────────────────────────────────────────────────")
}

func round(d time.Duration) time.Duration { return d.Round(time.Microsecond) }

func bar(count, total int64) string {
	const width = 30
	n := int(count * width / total)
	if n == 0 && count > 0 {
		n = 1
	}
	return strings.Repeat("█", n)
}
