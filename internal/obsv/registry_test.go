package obsv

import (
	"strings"
	"testing"
	"time"
)

func TestRegistryIdempotentHandles(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("foo_total", "help")
	c2 := r.Counter("foo_total", "other help ignored")
	if c1 != c2 {
		t.Fatal("same name should return the same counter cell")
	}
	g1 := r.GaugeVec("bar", "h", []string{"worker"}, []string{"0"})
	g2 := r.GaugeVec("bar", "h", []string{"worker"}, []string{"1"})
	g3 := r.GaugeVec("bar", "h", []string{"worker"}, []string{"0"})
	if g1 == g2 {
		t.Fatal("distinct label values must get distinct cells")
	}
	if g1 != g3 {
		t.Fatal("same label values must share the cell")
	}
}

func TestRegistryKindConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x", "h")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge should panic")
		}
	}()
	r.Gauge("x", "h")
}

func TestNilRegistryHandlesAreNoOps(t *testing.T) {
	var r *Registry
	c := r.Counter("x", "h")
	c.Inc()
	if c.Value() != 0 {
		t.Fatal("nil-registry counter must stay 0")
	}
	r.Gauge("g", "h").Set(5)
	r.FloatGauge("f", "h").Set(1.5)
	r.Histogram("h", "h", []int64{1}).Observe(3)
	r.Summary("s", "h", 8, []float64{0.5}).Observe(time.Second)
	if err := r.WritePromTo(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
}

func TestGaugeMax(t *testing.T) {
	var g Gauge
	g.Max(10)
	g.Max(5)
	if g.Value() != 10 {
		t.Fatalf("Max should keep the high-water: got %d", g.Value())
	}
	g.Max(12)
	if g.Value() != 12 {
		t.Fatalf("Max should raise: got %d", g.Value())
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := newHistogram([]int64{1, 4, 16})
	for _, v := range []int64{1, 1, 3, 9, 100} {
		h.Observe(v)
	}
	bounds, cum := h.Buckets()
	if len(bounds) != 3 {
		t.Fatalf("bounds: %v", bounds)
	}
	// le=1 → 2, le=4 → 3, le=16 → 4, +Inf → 5
	if cum[0] != 2 || cum[1] != 3 || cum[2] != 4 {
		t.Fatalf("cumulative counts: %v", cum)
	}
	if h.Count() != 5 || h.Sum() != 114 {
		t.Fatalf("count=%d sum=%d", h.Count(), h.Sum())
	}
}

func TestQuantilesSummary(t *testing.T) {
	q := newQuantiles(128, []float64{0.5, 0.99})
	for i := 1; i <= 100; i++ {
		q.Observe(time.Duration(i) * time.Millisecond)
	}
	qs, vals := q.Query()
	if len(qs) != 2 {
		t.Fatalf("quantiles: %v", qs)
	}
	if vals[0] != 50*time.Millisecond {
		t.Fatalf("p50: %v", vals[0])
	}
	if vals[1] != 99*time.Millisecond {
		t.Fatalf("p99: %v", vals[1])
	}
	if q.Count() != 100 {
		t.Fatalf("count: %d", q.Count())
	}
	if q.Sum() != 5050*time.Millisecond {
		t.Fatalf("sum: %v", q.Sum())
	}
}
