package obsv

import (
	"os"
	"strings"
	"testing"
	"time"
)

// goldenObserver builds a fully-populated observer with deterministic
// values across every family the serving stack registers.
func goldenObserver() *Observer {
	o := NewObserver(NewRegistry(), 8, 1)
	m := o.Metrics

	m.Admitted.Add(10)
	m.Completed.Add(7)
	m.Failed.Add(1)
	m.Rejected.Add(2)
	m.Expired.Inc()
	m.Cancelled.Inc()
	m.Retries.Add(3)
	m.Panics.Inc()
	m.Inflight.Set(4)
	m.QueuedCells.Set(32)

	lstm := m.Type("lstm")
	lstm.Ready.Set(12)
	lstm.Tasks.Add(5)
	lstm.Cells.Add(40)
	dec := m.Type("decoder")
	dec.Ready.Set(3)
	dec.Tasks.Add(2)
	dec.Cells.Add(6)

	w0 := m.Worker(0)
	w0.Depth.Set(2)
	w0.ArenaHighWater.Set(4096)

	// Multi-device sharding families (§5): per-device ready depth and copy
	// counters, plus the global pin-rebalance counter.
	d0 := m.Device(0)
	d0.Ready.Set(6.5)
	d0.Copies.Add(3)
	d1 := m.Device(1)
	d1.Ready.Set(2)
	d1.Copies.Add(1)
	m.PinMoves.Add(2)

	for _, occ := range []int64{1, 2, 8, 8, 8, 33, 300} {
		m.BatchOccupancy.Observe(occ)
	}
	m.SlotsUsed.Add(360)
	m.SlotsCap.Add(480) // padding waste = 1 - 360/480 = 0.25

	for i := 1; i <= 4; i++ {
		m.Queuing.Observe(time.Duration(i) * time.Millisecond)
		m.Computation.Observe(time.Duration(10*i) * time.Millisecond)
	}
	m.TraceDropped.Set(9)

	ring := o.NewRing("rp")
	for i := 1; i <= 10; i++ { // capacity 8 → 2 dropped
		ring.Write(Record{Kind: KindAdmit, Req: int64(i), T0: int64(i)})
	}

	// Durable-journal families, registered in the same registry as the
	// serving stack (one scrape covers both).
	jm := NewJournalMetrics(o.Metrics.Registry())
	jm.AdmitRecords.Add(10)
	jm.CancelRecords.Inc()
	jm.TerminalRecords.Add(9)
	jm.Errors.Inc()
	jm.Fsyncs.Add(4)
	jm.Bytes.Add(2048)
	for i := 1; i <= 4; i++ {
		jm.Commit.Observe(time.Duration(i) * 500 * time.Microsecond)
	}
	for _, n := range []int64{1, 3, 8, 64, 200} {
		jm.BatchRecords.Observe(n)
	}
	jm.Replayed.Add(20)
	jm.Recovered.Add(5)
	return o
}

// TestPromExpositionGolden pins the full Prometheus text exposition —
// metric names, label names, HELP/TYPE lines, ordering, and value
// formatting. A diff here means dashboards break: change goldenProm
// deliberately or not at all.
func TestPromExpositionGolden(t *testing.T) {
	o := goldenObserver()
	var b strings.Builder
	if err := o.Metrics.Registry().WritePromTo(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	if got != goldenProm {
		t.Fatalf("exposition drifted from golden.\n--- got ---\n%s\n--- want ---\n%s", got, goldenProm)
	}
}

// TestRegenPromGolden rewrites golden_prom_test.go's expected text when
// run with GOLDEN_OUT=<path>; used to regenerate the golden after a
// deliberate format change.
func TestRegenPromGolden(t *testing.T) {
	path := os.Getenv("GOLDEN_OUT")
	if path == "" {
		t.Skip("set GOLDEN_OUT=<path> to dump the current exposition")
	}
	var b strings.Builder
	if err := goldenObserver().Metrics.Registry().WritePromTo(&b); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestPromExpositionParses sanity-checks structural invariants
// independently of the golden: every series line's metric name must be
// declared by a preceding TYPE line, and histogram bucket counts must be
// cumulative.
func TestPromExpositionParses(t *testing.T) {
	o := goldenObserver()
	var b strings.Builder
	if err := o.Metrics.Registry().WritePromTo(&b); err != nil {
		t.Fatal(err)
	}
	declared := map[string]bool{}
	for _, line := range strings.Split(strings.TrimRight(b.String(), "\n"), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			declared[strings.Fields(line)[2]] = true
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		name := line
		if i := strings.IndexAny(line, "{ "); i >= 0 {
			name = line[:i]
		}
		base := name
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if cut, ok := strings.CutSuffix(name, suf); ok && declared[cut] {
				base = cut
				break
			}
		}
		if !declared[base] {
			t.Fatalf("series %q has no TYPE declaration", line)
		}
	}
}
