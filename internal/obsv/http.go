package obsv

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
	"strconv"
)

// Health is the /healthz payload. Serving reports 200; draining, stopped,
// or overloaded report 503 so load balancers stop routing new work. A
// degraded journal is a detail, not a failure: the server still answers
// 200 (it serves correctly — durability is what's lost), and operators
// alert on the detail fields or the journal error counter.
type Health struct {
	Status       string `json:"status"` // "serving", "draining", "stopped", "overloaded"
	Draining     bool   `json:"draining"`
	Stopped      bool   `json:"stopped"`
	Overloaded   bool   `json:"overloaded"`
	LiveRequests int    `json:"live_requests"`
	QueuedCells  int    `json:"queued_cells"`
	// JournalDegraded is true when the request journal hit a write/fsync
	// error and flipped to lossy mode; JournalError carries the cause.
	JournalDegraded bool   `json:"journal_degraded,omitempty"`
	JournalError    string `json:"journal_error,omitempty"`
	// PolicyShedding is true while the adaptive admission gate is in its
	// shedding state; PolicySheds counts the requests it rejected. Like a
	// degraded journal these are details, not failures — the server still
	// answers 200 while shedding (it is protecting its SLA).
	PolicyShedding bool  `json:"policy_shedding,omitempty"`
	PolicySheds    int64 `json:"policy_sheds,omitempty"`
}

// OK reports whether the health state should answer 200.
func (h Health) OK() bool { return h.Status == "serving" }

// defaultDebugRequests caps /debug/requests output when no ?limit= is given.
const defaultDebugRequests = 256

// Handler returns the introspection mux: /metrics (Prometheus text
// format), /debug/requests (JSONL request timelines), /healthz (health
// probe; 503 unless serving), and /debug/pprof/*. health may be nil, in
// which case /healthz always answers 200 "serving".
func Handler(o *Observer, health func() Health) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = o.Metrics.Registry().WritePromTo(w)
	})
	mux.HandleFunc("/debug/requests", func(w http.ResponseWriter, r *http.Request) {
		limit := defaultDebugRequests
		if s := r.URL.Query().Get("limit"); s != "" {
			if n, err := strconv.Atoi(s); err == nil {
				limit = n
			}
		}
		w.Header().Set("Content-Type", "application/jsonl; charset=utf-8")
		_ = o.WriteRequestsJSONL(w, limit)
	})
	mux.HandleFunc("/debug/trace", func(w http.ResponseWriter, r *http.Request) {
		var opt TraceOptions
		if s := r.URL.Query().Get("since"); s != "" {
			if ns, err := strconv.ParseInt(s, 10, 64); err == nil {
				opt.SinceNs = ns
			}
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		w.Header().Set("Content-Disposition", `attachment; filename="batchmaker-trace.json"`)
		_ = o.WriteTrace(w, opt)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		h := Health{Status: "serving"}
		if health != nil {
			h = health()
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		if !h.OK() {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		_ = json.NewEncoder(w).Encode(h)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = w.Write([]byte("batchmaker introspection\n\n" +
			"  /metrics          Prometheus text exposition\n" +
			"  /debug/requests   recent request timelines (JSONL, ?limit=N)\n" +
			"  /debug/trace      Perfetto/Chrome trace-event JSON (?since=unixNs)\n" +
			"  /healthz          drain/overload state (503 unless serving)\n" +
			"  /debug/pprof/     Go runtime profiles\n"))
	})
	return mux
}
