package obsv

// Journal metric family names. The durable request journal
// (internal/journal) publishes these through the same unified registry as
// the serving families, so one /metrics scrape covers both the execution
// pipeline and the durability layer. The golden exposition test pins them.
const (
	MetricJournalRecords       = "batchmaker_journal_records_total"
	MetricJournalErrors        = "batchmaker_journal_errors_total"
	MetricJournalFsyncs        = "batchmaker_journal_fsyncs_total"
	MetricJournalBytes         = "batchmaker_journal_bytes_written_total"
	MetricJournalCommitSeconds = "batchmaker_journal_commit_seconds"
	MetricJournalBatchRecords  = "batchmaker_journal_batch_records"
	MetricJournalReplayed      = "batchmaker_journal_replayed_records_total"
	MetricJournalRecovered     = "batchmaker_journal_recovered_requests_total"
)

// Journal record kind label values for MetricJournalRecords.
const (
	JournalKindAdmit    = "admit"
	JournalKindCancel   = "cancel"
	JournalKindTerminal = "terminal"
)

// JournalBatchBuckets are the inclusive upper bounds of the group-commit
// batch-size histogram (records committed per fsync batch).
var JournalBatchBuckets = []int64{1, 2, 4, 8, 16, 32, 64, 128}

// JournalMetrics groups the durable-journal handles. Built against a nil
// registry it is fully inert (every handle nil, every method a no-op), so
// the journal never branches on whether metrics are wired.
type JournalMetrics struct {
	// AdmitRecords / CancelRecords / TerminalRecords count committed
	// records by kind.
	AdmitRecords, CancelRecords, TerminalRecords *Counter
	// Errors counts write/fsync/rotation failures. A nonzero value with a
	// running server means the journal degraded to lossy mode.
	Errors *Counter
	// Fsyncs counts fsync calls issued by the flush loop.
	Fsyncs *Counter
	// Bytes counts journal bytes written (framing included).
	Bytes *Counter
	// Commit is the append→durable latency distribution (group-commit wait
	// included), as windowed quantiles.
	Commit *Quantiles
	// BatchRecords is the group-commit batch-size histogram: records
	// committed together per flush.
	BatchRecords *Histogram
	// Replayed counts intact records scanned during crash recovery.
	Replayed *Counter
	// Recovered counts journaled requests re-admitted by recovery replay.
	Recovered *Counter
}

// NewJournalMetrics registers the journal families in reg (which may be
// nil, yielding an inert instance).
func NewJournalMetrics(reg *Registry) *JournalMetrics {
	kind := func(v string) *Counter {
		return reg.CounterVec(MetricJournalRecords,
			"Durably committed journal records by kind.",
			[]string{"kind"}, []string{v})
	}
	return &JournalMetrics{
		AdmitRecords:    kind(JournalKindAdmit),
		CancelRecords:   kind(JournalKindCancel),
		TerminalRecords: kind(JournalKindTerminal),
		Errors: reg.Counter(MetricJournalErrors,
			"Journal write/fsync failures (nonzero means lossy mode)."),
		Fsyncs: reg.Counter(MetricJournalFsyncs, "Journal fsync calls."),
		Bytes:  reg.Counter(MetricJournalBytes, "Journal bytes written, framing included."),
		Commit: reg.Summary(MetricJournalCommitSeconds,
			"Append to durable-commit latency (group-commit wait included).",
			quantileWindow, latencyQuantiles),
		BatchRecords: reg.Histogram(MetricJournalBatchRecords,
			"Records committed per group-commit batch.", JournalBatchBuckets),
		Replayed: reg.Counter(MetricJournalReplayed,
			"Intact journal records scanned during crash recovery."),
		Recovered: reg.Counter(MetricJournalRecovered,
			"Journaled requests re-admitted by recovery replay."),
	}
}
