package obsv

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"batchmaker/internal/metrics"
)

// A metric family's exposition type.
type familyKind uint8

const (
	kindCounter familyKind = iota
	kindGauge
	kindFloatGauge
	kindHistogram
	kindSummary
)

func (k familyKind) promType() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge, kindFloatGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "summary"
}

// series is one labelled instance of a family: a (labelNames, labelValues)
// pair plus the value cell. Exactly one of the value fields is non-nil,
// matching the family kind.
type series struct {
	labels []string // label values, parallel to family.labelNames
	c      *Counter
	g      *Gauge
	fg     *FloatGauge
	h      *Histogram
	q      *Quantiles
}

// family is one metric name with its help text, type, and labelled series.
type family struct {
	name       string
	help       string
	kind       familyKind
	labelNames []string
	series     []*series
}

// Counter is a monotonically increasing atomic counter. All methods are safe
// on a nil receiver (no-ops / zero), so call sites don't need to guard on
// whether observability is enabled.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add increases the counter by d (d must be non-negative).
func (c *Counter) Add(d int64) {
	if c != nil {
		c.v.Add(d)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous int64 value.
type Gauge struct{ v atomic.Int64 }

// Set stores the gauge value.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add adjusts the gauge by d (may be negative).
func (g *Gauge) Add(d int64) {
	if g != nil {
		g.v.Add(d)
	}
}

// Max raises the gauge to v if v is larger (monotonic high-water update).
func (g *Gauge) Max(v int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// FloatGauge is an atomic instantaneous float64 value (stored as bits).
type FloatGauge struct{ v atomic.Uint64 }

// Set stores the gauge value.
func (g *FloatGauge) Set(v float64) {
	if g != nil {
		g.v.Store(math.Float64bits(v))
	}
}

// Value returns the current value.
func (g *FloatGauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.v.Load())
}

// Histogram is a fixed-bucket histogram of int64 observations with atomic
// per-bucket counts. Bounds are inclusive upper edges; observations above
// the last bound land in the implicit +Inf bucket.
type Histogram struct {
	bounds []int64
	counts []atomic.Int64 // len(bounds)+1; last is +Inf
	sum    atomic.Int64
	n      atomic.Int64
}

func newHistogram(bounds []int64) *Histogram {
	b := make([]int64, len(bounds))
	copy(b, bounds)
	sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one value. Allocation-free; bucket search is a linear scan
// (bucket counts are small — e.g. 9 occupancy buckets).
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.n.Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.n.Load()
}

// Sum returns the sum of observations.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Buckets returns (upper bounds, cumulative counts) — the Prometheus bucket
// view, excluding the +Inf bucket (whose cumulative count equals Count()).
func (h *Histogram) Buckets() ([]int64, []int64) {
	if h == nil {
		return nil, nil
	}
	cum := make([]int64, len(h.bounds))
	var run int64
	for i := range h.bounds {
		run += h.counts[i].Load()
		cum[i] = run
	}
	return h.bounds, cum
}

// Quantiles wraps a bounded metrics.Window of duration observations and
// exposes windowed quantiles plus all-time sum/count, exposition-ready as a
// Prometheus summary. Safe for concurrent Observe/Query (the window carries
// its own lock — the PR-5 bugfix).
type Quantiles struct {
	w  *metrics.Window
	qs []float64
}

func newQuantiles(window int, qs []float64) *Quantiles {
	return &Quantiles{w: metrics.NewWindow(window), qs: qs}
}

// Observe records one duration.
func (q *Quantiles) Observe(d time.Duration) {
	if q != nil {
		q.w.Add(d)
	}
}

// Count returns the all-time observation count.
func (q *Quantiles) Count() int64 {
	if q == nil {
		return 0
	}
	return int64(q.w.Count())
}

// Sum returns the all-time observation sum.
func (q *Quantiles) Sum() time.Duration {
	if q == nil {
		return 0
	}
	return q.w.Sum()
}

// Query returns the configured quantiles over the retained window.
func (q *Quantiles) Query() (qs []float64, vals []time.Duration) {
	if q == nil {
		return nil, nil
	}
	vals = make([]time.Duration, len(q.qs))
	for i, p := range q.qs {
		vals[i] = q.w.Percentile(p * 100)
	}
	return q.qs, vals
}

// Registry holds named metric families and renders them in Prometheus text
// format. Getters are idempotent: the same (name, label values) returns the
// same cell, so hot paths can cache handles while exposition walks the
// registry. Collectors registered via AddCollector run just before each
// exposition to refresh derived gauges.
type Registry struct {
	mu         sync.Mutex
	families   map[string]*family
	collectors []func()
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// AddCollector registers fn to run before each exposition/snapshot (used to
// refresh derived values such as the padding-waste ratio). Collectors run
// without the registry lock held, so they may call registry getters.
func (r *Registry) AddCollector(fn func()) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.collectors = append(r.collectors, fn)
	r.mu.Unlock()
}

func (r *Registry) collect() {
	if r == nil {
		return
	}
	r.mu.Lock()
	fns := make([]func(), len(r.collectors))
	copy(fns, r.collectors)
	r.mu.Unlock()
	for _, fn := range fns {
		fn()
	}
}

// getSeries finds or creates the series for (name, labelValues), creating
// the family on first use. It panics if the same name is re-registered with
// a different kind or label schema — that is a programming error that would
// corrupt the exposition.
func (r *Registry) getSeries(name, help string, kind familyKind, labelNames, labelValues []string, mk func(*series)) *series {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind, labelNames: labelNames}
		r.families[name] = f
	} else {
		if f.kind != kind {
			panic(fmt.Sprintf("obsv: metric %q re-registered as %s (was %s)", name, kind.promType(), f.kind.promType()))
		}
		if len(f.labelNames) != len(labelNames) {
			panic(fmt.Sprintf("obsv: metric %q re-registered with %d labels (was %d)", name, len(labelNames), len(f.labelNames)))
		}
		for i := range labelNames {
			if f.labelNames[i] != labelNames[i] {
				panic(fmt.Sprintf("obsv: metric %q re-registered with label %q (was %q)", name, labelNames[i], f.labelNames[i]))
			}
		}
	}
outer:
	for _, s := range f.series {
		for i := range labelValues {
			if s.labels[i] != labelValues[i] {
				continue outer
			}
		}
		return s
	}
	vals := make([]string, len(labelValues))
	copy(vals, labelValues)
	s := &series{labels: vals}
	mk(s)
	f.series = append(f.series, s)
	return s
}

// CounterVec returns the counter for (name, labels). nil-registry safe.
func (r *Registry) CounterVec(name, help string, labelNames, labelValues []string) *Counter {
	if r == nil {
		return nil
	}
	return r.getSeries(name, help, kindCounter, labelNames, labelValues, func(s *series) { s.c = &Counter{} }).c
}

// Counter returns the unlabelled counter for name.
func (r *Registry) Counter(name, help string) *Counter {
	return r.CounterVec(name, help, nil, nil)
}

// GaugeVec returns the gauge for (name, labels).
func (r *Registry) GaugeVec(name, help string, labelNames, labelValues []string) *Gauge {
	if r == nil {
		return nil
	}
	return r.getSeries(name, help, kindGauge, labelNames, labelValues, func(s *series) { s.g = &Gauge{} }).g
}

// Gauge returns the unlabelled gauge for name.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.GaugeVec(name, help, nil, nil)
}

// FloatGaugeVec returns the float gauge for (name, labels).
func (r *Registry) FloatGaugeVec(name, help string, labelNames, labelValues []string) *FloatGauge {
	if r == nil {
		return nil
	}
	return r.getSeries(name, help, kindFloatGauge, labelNames, labelValues, func(s *series) { s.fg = &FloatGauge{} }).fg
}

// FloatGauge returns the unlabelled float gauge for name.
func (r *Registry) FloatGauge(name, help string) *FloatGauge {
	return r.FloatGaugeVec(name, help, nil, nil)
}

// Histogram returns the unlabelled histogram for name with the given
// inclusive upper bounds (first call wins; later calls reuse it).
func (r *Registry) Histogram(name, help string, bounds []int64) *Histogram {
	if r == nil {
		return nil
	}
	return r.getSeries(name, help, kindHistogram, nil, nil, func(s *series) { s.h = newHistogram(bounds) }).h
}

// Summary returns the unlabelled windowed-quantile summary for name.
func (r *Registry) Summary(name, help string, window int, qs []float64) *Quantiles {
	if r == nil {
		return nil
	}
	return r.getSeries(name, help, kindSummary, nil, nil, func(s *series) { s.q = newQuantiles(window, qs) }).q
}

// FamilyNames returns the sorted names of all registered families.
func (r *Registry) FamilyNames() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.families))
	for n := range r.families {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
