package obsv

import "sync/atomic"

// Kind discriminates span records. Lifecycle kinds (admit through reject)
// carry a request ID and together tell one request's story; span kinds
// (dispatch, task, retry, panic) carry worker/type/batch fields and tell the
// execution pipeline's.
type Kind uint8

// Span record kinds.
const (
	// KindInvalid marks a slot that has never been written.
	KindInvalid Kind = iota
	// KindAdmit records a request entering the system.
	KindAdmit
	// KindFirstExec records the first time any cell of a request executed —
	// the boundary between the paper's queuing and computation phases.
	KindFirstExec
	// KindComplete, KindFail, KindExpire and KindCancel record the four
	// terminal request states.
	KindComplete
	KindFail
	KindExpire
	KindCancel
	// KindReject records a request shed at admission (it never got an ID).
	KindReject
	// KindDispatch records the scheduler loop handing one batched task to a
	// worker; Queue is the worker's outstanding-task depth at that moment.
	KindDispatch
	// KindTaskExec records one executed batched task: T0 is the dispatch
	// time, T1 the completion time, Batch the number of live rows executed.
	KindTaskExec
	// KindRetry records one retried transient task error.
	KindRetry
	// KindPanic records a recovered cell panic.
	KindPanic
	// KindJournalFlush records one journal group-commit write+flush batch:
	// T0 is the batch collect start, T1 the flush completion, Batch the
	// number of records committed.
	KindJournalFlush
	// KindJournalFsync records one fsync call on the journal's active
	// segment: T0 start, T1 completion. A long T1-T0 is an fsync stall.
	KindJournalFsync
	// KindJournalDurable records one admit record becoming durable (synced
	// or acked per the journal's sync policy); Req links it into the
	// request's causal flow.
	KindJournalDurable
	// KindPolicyShed records the adaptive admission gate shedding one
	// submission (the companion lifecycle record is KindReject).
	KindPolicyShed
	// KindPolicyBatch records an adaptive MaxBatch move: Type is the cell
	// type, Batch the new bound.
	KindPolicyBatch
	// KindRebalance records a scheduler pin-rebalance burst; Batch is the
	// number of cell types whose pin moved.
	KindRebalance
)

func (k Kind) String() string {
	switch k {
	case KindAdmit:
		return "admit"
	case KindFirstExec:
		return "first_exec"
	case KindComplete:
		return "complete"
	case KindFail:
		return "fail"
	case KindExpire:
		return "expire"
	case KindCancel:
		return "cancel"
	case KindReject:
		return "reject"
	case KindDispatch:
		return "dispatch"
	case KindTaskExec:
		return "task"
	case KindRetry:
		return "retry"
	case KindPanic:
		return "panic"
	case KindJournalFlush:
		return "journal_flush"
	case KindJournalFsync:
		return "journal_fsync"
	case KindJournalDurable:
		return "journal_durable"
	case KindPolicyShed:
		return "policy_shed"
	case KindPolicyBatch:
		return "policy_batch"
	case KindRebalance:
		return "rebalance"
	}
	return "invalid"
}

// Record flag bits (Record.Flags).
const (
	// FlagRemote marks a task dispatched off its cell type's pinned device.
	FlagRemote uint8 = 1 << iota
	// FlagMigrated marks a task batching at least one migrated subgraph.
	FlagMigrated
)

// Record is one fixed-size span/event record. All fields are plain values so
// writing a Record into a Ring never allocates; the string identity behind
// Type is interned once per cell type (see Observer.TypeName).
type Record struct {
	Kind Kind
	// Worker is the writing worker's index (meaningful for span kinds).
	Worker uint8
	// Type is the interned cell-type ID (span kinds).
	Type uint16
	// Batch is the number of live rows the task executed (span kinds).
	Batch uint16
	// Queue is the worker's task-queue depth at dispatch (span kinds).
	Queue uint16
	// Device is the device-pool index the record's worker belongs to
	// (span kinds; 0 for single-device deployments).
	Device uint8
	// Flags carries the Flag* bits (remote dispatch, migration).
	Flags uint8
	// Req is the request ID (lifecycle kinds; 0 otherwise).
	Req int64
	// T0 is the record's primary timestamp (unix nanoseconds): the event
	// time for lifecycle kinds, the dispatch time for task records.
	T0 int64
	// T1 is the completion timestamp of task records (0 otherwise).
	T1 int64
}

// pack squeezes the small fields into two words so a ring write is seven
// atomic stores (seq twice, meta, aux, req, t0, t1) instead of eleven. The
// first word is full; Device and Flags live in the aux word.
func pack(r Record) uint64 {
	return uint64(r.Kind) |
		uint64(r.Worker)<<8 |
		uint64(r.Type)<<16 |
		uint64(r.Batch)<<32 |
		uint64(r.Queue)<<48
}

func packAux(r Record) uint64 {
	return uint64(r.Device) | uint64(r.Flags)<<8
}

func unpack(m, aux uint64) Record {
	return Record{
		Kind:   Kind(m & 0xff),
		Worker: uint8(m >> 8),
		Type:   uint16(m >> 16),
		Batch:  uint16(m >> 32),
		Queue:  uint16(m >> 48),
		Device: uint8(aux),
		Flags:  uint8(aux >> 8),
	}
}

// slot is one ring entry. seq is a per-slot sequence counter: odd while a
// write is in progress, even when stable. All payload fields are atomics so
// concurrent Snapshot reads are race-free; the seq protocol additionally
// makes them tear-free (a snapshot discards any slot whose seq changed while
// it was being read).
type slot struct {
	seq  atomic.Uint64
	meta atomic.Uint64
	aux  atomic.Uint64
	req  atomic.Int64
	t0   atomic.Int64
	t1   atomic.Int64
}

// Ring is a fixed-capacity, single-writer, lock-free ring of span records.
// Exactly one goroutine may call Write (and Tick); any number of goroutines
// may call Snapshot/Total/Dropped concurrently. The hot-path write performs
// no heap allocation and takes no lock — it is seven atomic stores — so it
// is safe inside the server's zero-allocation worker loop. When the ring is
// full the oldest record is overwritten (drop-oldest); Dropped counts the
// overwrites.
type Ring struct {
	name    string
	mask    uint64
	slots   []slot
	written atomic.Uint64
	// tick is the writer-owned sampling counter (see Observer.SampleSpan).
	tick uint64
}

// DefaultRingCapacity is the per-writer ring size used when none is given.
const DefaultRingCapacity = 4096

// NewRing returns a ring retaining the most recent records. capacity is
// rounded up to a power of two; non-positive means DefaultRingCapacity.
func NewRing(name string, capacity int) *Ring {
	if capacity <= 0 {
		capacity = DefaultRingCapacity
	}
	n := 1
	for n < capacity {
		n <<= 1
	}
	return &Ring{name: name, mask: uint64(n - 1), slots: make([]slot, n)}
}

// Name returns the ring's writer name (e.g. "worker-0").
func (r *Ring) Name() string {
	if r == nil {
		return ""
	}
	return r.name
}

// Cap returns the ring capacity in records.
func (r *Ring) Cap() int {
	if r == nil {
		return 0
	}
	return len(r.slots)
}

// Write appends one record, overwriting the oldest when full. Single-writer:
// only the owning goroutine may call it. A nil ring is a no-op.
func (r *Ring) Write(rec Record) {
	if r == nil {
		return
	}
	i := r.written.Load()
	s := &r.slots[i&r.mask]
	s.seq.Add(1) // odd: write in progress
	s.meta.Store(pack(rec))
	s.aux.Store(packAux(rec))
	s.req.Store(rec.Req)
	s.t0.Store(rec.T0)
	s.t1.Store(rec.T1)
	s.seq.Add(1) // even: stable
	r.written.Store(i + 1)
}

// Total returns how many records were ever written.
func (r *Ring) Total() uint64 {
	if r == nil {
		return 0
	}
	return r.written.Load()
}

// Dropped returns how many records were overwritten before being retained —
// the drop-oldest counter of the bounded ring.
func (r *Ring) Dropped() uint64 {
	if r == nil {
		return 0
	}
	if t, c := r.written.Load(), uint64(len(r.slots)); t > c {
		return t - c
	}
	return 0
}

// Snapshot appends the retained records (oldest first) to dst and returns
// it. It is safe to call concurrently with Write: a slot being rewritten
// mid-read is detected via its sequence counter and retried a few times,
// then skipped, so a snapshot never blocks the writer and never returns a
// torn record.
func (r *Ring) Snapshot(dst []Record) []Record {
	if r == nil {
		return dst
	}
	end := r.written.Load()
	start := uint64(0)
	if n := uint64(len(r.slots)); end > n {
		start = end - n
	}
	for i := start; i < end; i++ {
		s := &r.slots[i&r.mask]
		for try := 0; try < 4; try++ {
			seq1 := s.seq.Load()
			if seq1&1 != 0 {
				continue
			}
			rec := unpack(s.meta.Load(), s.aux.Load())
			rec.Req = s.req.Load()
			rec.T0 = s.t0.Load()
			rec.T1 = s.t1.Load()
			if s.seq.Load() == seq1 {
				dst = append(dst, rec)
				break
			}
		}
	}
	return dst
}
