package obsv

import (
	"bufio"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
)

// writeLifecycle plays a known request history into an observer's rings:
// req 1 admits, first-executes, completes; req 2 admits, first-executes,
// fails; req 3 admits and stays in flight.
func timelineObserver() *Observer {
	o := NewObserver(NewRegistry(), 64, 1)
	rp := o.NewRing("rp")
	w0 := o.NewRing("worker-0")
	rp.Write(Record{Kind: KindAdmit, Req: 1, T0: 100})
	rp.Write(Record{Kind: KindAdmit, Req: 2, T0: 150})
	w0.Write(Record{Kind: KindFirstExec, Req: 1, T0: 300})
	w0.Write(Record{Kind: KindFirstExec, Req: 2, T0: 350})
	rp.Write(Record{Kind: KindComplete, Req: 1, T0: 900})
	rp.Write(Record{Kind: KindFail, Req: 2, T0: 500})
	rp.Write(Record{Kind: KindAdmit, Req: 3, T0: 1000})
	// Span records must not leak into timelines.
	w0.Write(Record{Kind: KindTaskExec, Worker: 0, Type: 1, Batch: 2, T0: 310, T1: 320})
	return o
}

func TestTimelineReconstruction(t *testing.T) {
	o := timelineObserver()
	tls := o.Timelines(0)
	if len(tls) != 3 {
		t.Fatalf("want 3 timelines, got %d", len(tls))
	}
	// Newest admit first.
	if tls[0].Req != 3 || tls[1].Req != 2 || tls[2].Req != 1 {
		t.Fatalf("order: got %d,%d,%d want 3,2,1", tls[0].Req, tls[1].Req, tls[2].Req)
	}

	one := tls[2]
	kinds := make([]string, len(one.Events))
	for i, e := range one.Events {
		kinds[i] = e.Kind
	}
	if got := strings.Join(kinds, ","); got != "admit,first_exec,complete" {
		t.Fatalf("req 1 ordering: %s", got)
	}
	if one.Outcome != "complete" {
		t.Fatalf("req 1 outcome: %q", one.Outcome)
	}
	if one.QueuingNs != 200 || one.ComputationNs != 600 {
		t.Fatalf("req 1 latency split: queuing=%d computation=%d", one.QueuingNs, one.ComputationNs)
	}

	two := tls[1]
	if two.Outcome != "fail" || two.QueuingNs != 200 || two.ComputationNs != 150 {
		t.Fatalf("req 2: %+v", two)
	}

	three := tls[0]
	if three.Outcome != "" || len(three.Events) != 1 {
		t.Fatalf("req 3 should be in flight with one event: %+v", three)
	}
}

func TestTimelineLimit(t *testing.T) {
	o := timelineObserver()
	tls := o.Timelines(2)
	if len(tls) != 2 || tls[0].Req != 3 || tls[1].Req != 2 {
		t.Fatalf("limit=2 should keep the 2 newest: %+v", tls)
	}
}

func TestDebugRequestsEndpoint(t *testing.T) {
	o := timelineObserver()
	srv := httptest.NewServer(Handler(o, nil))
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/debug/requests?limit=10")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var lines []Timeline
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var tl Timeline
		if err := json.Unmarshal(sc.Bytes(), &tl); err != nil {
			t.Fatalf("bad JSONL line %q: %v", sc.Text(), err)
		}
		lines = append(lines, tl)
	}
	if len(lines) != 3 {
		t.Fatalf("want 3 JSONL lines, got %d", len(lines))
	}
	if lines[2].Req != 1 || lines[2].Outcome != "complete" {
		t.Fatalf("req 1 line: %+v", lines[2])
	}
}

func TestHealthzEndpoint(t *testing.T) {
	o := NewObserver(NewRegistry(), 8, 1)
	health := Health{Status: "serving"}
	srv := httptest.NewServer(Handler(o, func() Health { return health }))
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("serving should answer 200, got %d", resp.StatusCode)
	}

	health = Health{Status: "draining", Draining: true}
	resp, err = srv.Client().Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h Health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 503 || !h.Draining {
		t.Fatalf("draining should answer 503 with draining=true, got %d %+v", resp.StatusCode, h)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	o := goldenObserver()
	srv := httptest.NewServer(Handler(o, nil))
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("content type %q", ct)
	}
	var b strings.Builder
	if _, err := bufio.NewReader(resp.Body).WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	if b.String() != goldenProm {
		t.Fatal("/metrics body should match the golden exposition")
	}
}

func TestSamplingGate(t *testing.T) {
	o := NewObserver(NewRegistry(), 8, 4)
	r := o.NewRing("w")
	wrote := 0
	for i := 0; i < 100; i++ {
		if o.SampleSpan(r) {
			wrote++
		}
	}
	if wrote != 25 {
		t.Fatalf("sample=4 over 100 ticks should pass 25, got %d", wrote)
	}
	o.SetSampling(0)
	if o.SampleSpan(r) {
		t.Fatal("sample=0 must gate everything")
	}
	o.SetSampling(1)
	if !o.SampleSpan(r) {
		t.Fatal("sample=1 must pass everything")
	}
	var nilObs *Observer
	if nilObs.SampleSpan(r) {
		t.Fatal("nil observer must gate")
	}
}

func TestSummaryRenders(t *testing.T) {
	o := goldenObserver()
	var b strings.Builder
	o.Metrics.WriteSummary(&b)
	out := b.String()
	for _, want := range []string{"admitted=10", "latency split", "batch occupancy", "top cell types", "lstm"} {
		if !strings.Contains(out, want) {
			t.Fatalf("summary missing %q:\n%s", want, out)
		}
	}
	var nilM *ServingMetrics
	b.Reset()
	nilM.WriteSummary(&b)
	if !strings.Contains(b.String(), "disabled") {
		t.Fatal("nil metrics summary should say disabled")
	}
}
