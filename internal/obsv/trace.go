package obsv

import (
	"encoding/json"
	"io"
	"sort"
	"strconv"
)

// Trace assembly: the span/event rings are re-assembled into Chrome
// trace-event JSON that loads in Perfetto (ui.perfetto.dev) or
// chrome://tracing. Track layout:
//
//	pid 1            "batchmaker pipeline"
//	  tid 1          request-processor  (admit/terminal lifecycle, policy events)
//	  tid 2          scheduler          (dispatch instants, rebalances)
//	  tid 3          journal-writer     (group-commit flush slices, inline fsyncs)
//	  tid 4          journal-syncer     (fsync slices, durability acks)
//	pid 10+d         "device-pool-<d>"
//	  tid 10+w       worker-<w>         (task-exec slices, first-exec, retries)
//
// Causality is drawn with flow arrows keyed by request ID:
// admit (s) → journal-durable (t) → first-exec (t) → terminal (f), so every
// completed request has at least one cross-track arrow from the
// request-processor track into its executing worker's track. Batch slices
// (task-exec) are annotated with occupancy, padding waste, precision tier,
// and remote/migration flags resolved via Observer.TypeDetailFor.
//
// Timestamps are rebased to the earliest retained record so nanosecond
// resolution survives the float microseconds of the trace-event format; the
// base is recorded in otherData.base_unix_ns.

// traceEvent is one Chrome trace-event JSON object.
type traceEvent struct {
	Name string         `json:"name,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Cat  string         `json:"cat,omitempty"`
	ID   int64          `json:"id,omitempty"`
	BP   string         `json:"bp,omitempty"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// traceDoc is the top-level trace-event JSON document.
type traceDoc struct {
	DisplayTimeUnit string         `json:"displayTimeUnit"`
	OtherData       map[string]any `json:"otherData"`
	TraceEvents     []traceEvent   `json:"traceEvents"`
}

// Pipeline-process track IDs.
const (
	tracePidPipeline  = 1
	traceTidRP        = 1
	traceTidSched     = 2
	traceTidJWriter   = 3
	traceTidJSyncer   = 4
	tracePidDeviceOff = 10 // device pool d -> pid 10+d
	traceTidWorkerOff = 10 // worker w -> tid 10+w
)

// Journal sub-writer discriminator carried in Record.Worker for journal
// kinds: the flush loop writes with JournalWriterLane, the sync loop with
// JournalSyncerLane.
const (
	JournalWriterLane uint8 = 0
	JournalSyncerLane uint8 = 1
)

type trackKey struct{ pid, tid int }

// TraceOptions filters trace assembly.
type TraceOptions struct {
	// SinceNs drops records whose primary timestamp is older (unix ns for
	// the live server, virtual ns for sim runs). 0 keeps everything.
	SinceNs int64
}

func durPtr(v float64) *float64 { return &v }

// usSince converts a nanosecond timestamp to trace microseconds relative
// to base, keeping nanosecond resolution as the fractional part.
func usSince(ns, base int64) float64 {
	return float64(ns-base) / 1e3
}

// WriteTrace assembles the retained ring records into Chrome trace-event
// JSON and writes it to w. Safe to call concurrently with the hot path
// (ring snapshots are seqlock-protected). Nil-receiver safe: writes an
// empty trace.
func (o *Observer) WriteTrace(w io.Writer, opt TraceOptions) error {
	doc := o.traceDocument(opt)
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}

func (o *Observer) traceDocument(opt TraceOptions) traceDoc {
	recs := o.Snapshot()
	if opt.SinceNs > 0 {
		kept := recs[:0]
		for _, r := range recs {
			if r.T0 >= opt.SinceNs {
				kept = append(kept, r)
			}
		}
		recs = kept
	}
	var base int64
	if len(recs) > 0 {
		base = recs[0].T0 // Snapshot sorts by T0, so recs[0] is the earliest
		for _, r := range recs {
			if r.T0 < base {
				base = r.T0
			}
		}
	}
	a := traceAssembler{o: o, base: base, tracks: make(map[trackKey]string)}
	for _, r := range recs {
		a.record(r)
	}
	events := append(a.metadata(), a.events...)
	if events == nil {
		events = []traceEvent{} // an empty trace still needs a JSON array
	}
	doc := traceDoc{
		DisplayTimeUnit: "ms",
		OtherData: map[string]any{
			"base_unix_ns": base,
			"source":       "batchmaker",
		},
		TraceEvents: events,
	}
	return doc
}

type traceAssembler struct {
	o      *Observer
	base   int64
	events []traceEvent
	// tracks maps every (pid,tid) that emitted an event to its thread name,
	// so metadata() can declare exactly the tracks in use.
	tracks map[trackKey]string
}

func (a *traceAssembler) use(pid, tid int, name string) (int, int) {
	a.tracks[trackKey{pid, tid}] = name
	return pid, tid
}

func (a *traceAssembler) workerTrack(r Record) (int, int) {
	return a.use(tracePidDeviceOff+int(r.Device), traceTidWorkerOff+int(r.Worker),
		"worker-"+strconv.Itoa(int(r.Worker)))
}

func (a *traceAssembler) journalTrack(r Record) (int, int) {
	if r.Worker == JournalSyncerLane {
		return a.use(tracePidPipeline, traceTidJSyncer, "journal-syncer")
	}
	return a.use(tracePidPipeline, traceTidJWriter, "journal-writer")
}

func (a *traceAssembler) rpTrack() (int, int) {
	return a.use(tracePidPipeline, traceTidRP, "request-processor")
}

func (a *traceAssembler) schedTrack() (int, int) {
	return a.use(tracePidPipeline, traceTidSched, "scheduler")
}

// thinSliceUs is the nominal duration given to point-in-time lifecycle
// slices so flow arrows have a slice to bind to.
const thinSliceUs = 0.5

// slice emits an X event plus, when flowPh is non-empty, the flow event
// ("s"/"t"/"f") that chains this request across tracks.
func (a *traceAssembler) slice(name string, pid, tid int, ts, dur float64, req int64, flowPh string, args map[string]any) {
	a.events = append(a.events, traceEvent{
		Name: name, Ph: "X", Ts: ts, Dur: durPtr(dur),
		Pid: pid, Tid: tid, Args: args,
	})
	if flowPh != "" && req != 0 {
		ev := traceEvent{Name: "req", Ph: flowPh, Cat: "request",
			Ts: ts, Pid: pid, Tid: tid, ID: req}
		if flowPh == "f" {
			ev.BP = "e" // bind the flow end to the enclosing slice
		}
		a.events = append(a.events, ev)
	}
}

func (a *traceAssembler) instant(name string, pid, tid int, ts float64, args map[string]any) {
	a.events = append(a.events, traceEvent{
		Name: name, Ph: "i", S: "t", Ts: ts, Pid: pid, Tid: tid, Args: args,
	})
}

func (a *traceAssembler) record(r Record) {
	ts := usSince(r.T0, a.base)
	switch r.Kind {
	case KindAdmit:
		pid, tid := a.rpTrack()
		a.slice("admit", pid, tid, ts, thinSliceUs, r.Req, "s", nil)
	case KindComplete, KindFail, KindExpire, KindCancel:
		pid, tid := a.rpTrack()
		a.slice(r.Kind.String(), pid, tid, ts, thinSliceUs, r.Req, "f", nil)
	case KindReject:
		pid, tid := a.rpTrack()
		a.instant("reject", pid, tid, ts, nil)
	case KindPolicyShed:
		pid, tid := a.rpTrack()
		a.instant("policy_shed", pid, tid, ts, nil)
	case KindPolicyBatch:
		pid, tid := a.rpTrack()
		a.instant("policy_batch", pid, tid, ts, map[string]any{
			"cell_type": a.o.TypeName(r.Type),
			"max_batch": int(r.Batch),
		})
	case KindDispatch:
		pid, tid := a.schedTrack()
		a.instant("dispatch", pid, tid, ts, map[string]any{
			"cell_type":   a.o.TypeName(r.Type),
			"worker":      int(r.Worker),
			"batch":       int(r.Batch),
			"queue_depth": int(r.Queue),
		})
	case KindRebalance:
		pid, tid := a.schedTrack()
		a.instant("rebalance", pid, tid, ts, map[string]any{
			"pin_moves": int(r.Batch),
		})
	case KindFirstExec:
		pid, tid := a.workerTrack(r)
		a.slice("first_exec", pid, tid, ts, thinSliceUs, r.Req, "t", nil)
	case KindTaskExec:
		pid, tid := a.workerTrack(r)
		args := map[string]any{
			"cell_type":   a.o.TypeName(r.Type),
			"batch":       int(r.Batch),
			"queue_depth": int(r.Queue),
			"remote":      r.Flags&FlagRemote != 0,
			"migrated":    r.Flags&FlagMigrated != 0,
		}
		if d := a.o.TypeDetailFor(r.Type); d.MaxBatch > 0 {
			args["occupancy"] = float64(int(r.Batch)) / float64(d.MaxBatch)
			args["padding_waste"] = d.MaxBatch - int(r.Batch)
			if d.Precision != "" {
				args["precision"] = d.Precision
			}
		}
		dur := usSince(r.T1, a.base) - ts
		if dur < 0 {
			dur = 0
		}
		a.slice(a.o.TypeName(r.Type), pid, tid, ts, dur, 0, "", args)
	case KindRetry, KindPanic:
		pid, tid := a.workerTrack(r)
		a.instant(r.Kind.String(), pid, tid, ts, map[string]any{
			"cell_type": a.o.TypeName(r.Type),
			"batch":     int(r.Batch),
		})
	case KindJournalFlush:
		pid, tid := a.journalTrack(r)
		dur := usSince(r.T1, a.base) - ts
		if dur < 0 {
			dur = 0
		}
		a.slice("journal_flush", pid, tid, ts, dur, 0, "", map[string]any{
			"records": int(r.Batch),
		})
	case KindJournalFsync:
		pid, tid := a.journalTrack(r)
		dur := usSince(r.T1, a.base) - ts
		if dur < 0 {
			dur = 0
		}
		a.slice("journal_fsync", pid, tid, ts, dur, 0, "", nil)
	case KindJournalDurable:
		pid, tid := a.journalTrack(r)
		a.slice("durable", pid, tid, ts, thinSliceUs, r.Req, "t", nil)
	}
}

// metadata declares process and thread names for every track in use.
func (a *traceAssembler) metadata() []traceEvent {
	keys := make([]trackKey, 0, len(a.tracks))
	for k := range a.tracks {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].pid != keys[j].pid {
			return keys[i].pid < keys[j].pid
		}
		return keys[i].tid < keys[j].tid
	})
	var meta []traceEvent
	seenPid := make(map[int]bool)
	for _, k := range keys {
		if !seenPid[k.pid] {
			seenPid[k.pid] = true
			name := "batchmaker pipeline"
			if k.pid >= tracePidDeviceOff {
				name = "device-pool-" + strconv.Itoa(k.pid-tracePidDeviceOff)
			}
			meta = append(meta, traceEvent{
				Name: "process_name", Ph: "M", Pid: k.pid, Tid: 0,
				Args: map[string]any{"name": name},
			})
		}
		meta = append(meta, traceEvent{
			Name: "thread_name", Ph: "M", Pid: k.pid, Tid: k.tid,
			Args: map[string]any{"name": a.tracks[k]},
		})
	}
	return meta
}
