package obsv

// Policy metric family names. The adaptive control layer (internal/policy)
// publishes these through the unified registry; they only appear in the
// exposition when a policy controller is actually wired, so policy-off
// deployments keep the golden exposition unchanged.
const (
	MetricPolicySheds     = "batchmaker_policy_shed_total"
	MetricPolicyGateFlips = "batchmaker_policy_gate_flips_total"
	MetricPolicyShedding  = "batchmaker_policy_shedding"
	MetricPolicyEstWait   = "batchmaker_policy_est_wait_seconds"
	MetricPolicyMaxBatch  = "batchmaker_policy_max_batch"
)

// PolicyMetrics groups the adaptive-policy handles. Built against a nil
// registry it is fully inert, so the controller never branches on whether
// metrics are wired.
type PolicyMetrics struct {
	// Sheds counts requests rejected by the Little's-law admission gate.
	Sheds *Counter
	// GateFlips counts admit→shed and shed→admit transitions; a high rate
	// relative to Sheds means the hysteresis band is too narrow.
	GateFlips *Counter
	// Shedding is 1 while the gate is in its shedding state, else 0.
	Shedding *Gauge
	// EstWait is the gate's latest Little's-law queue-wait estimate.
	EstWait *FloatGauge
	// maxBatch holds the per-cell-type adaptive MaxBatch gauges, created
	// lazily as types first report.
	reg      *Registry
	maxBatch map[string]*Gauge
}

// NewPolicyMetrics registers the policy families in reg (which may be nil,
// yielding an inert instance).
func NewPolicyMetrics(reg *Registry) *PolicyMetrics {
	return &PolicyMetrics{
		Sheds: reg.Counter(MetricPolicySheds,
			"Requests rejected by the adaptive admission gate."),
		GateFlips: reg.Counter(MetricPolicyGateFlips,
			"Admission gate state transitions (admit<->shed)."),
		Shedding: reg.Gauge(MetricPolicyShedding,
			"1 while the admission gate is shedding, else 0."),
		EstWait: reg.FloatGauge(MetricPolicyEstWait,
			"Little's-law estimated queue wait at the last admission decision."),
		reg:      reg,
		maxBatch: make(map[string]*Gauge),
	}
}

// MaxBatch returns the adaptive-MaxBatch gauge for a cell type, registering
// it on first use. Safe on an inert instance (returns a nil, no-op gauge).
// The policy controller is single-goroutine, so the lazy map needs no lock.
func (m *PolicyMetrics) MaxBatch(typeKey string) *Gauge {
	if m == nil || m.reg == nil {
		return nil
	}
	if g, ok := m.maxBatch[typeKey]; ok {
		return g
	}
	g := m.reg.GaugeVec(MetricPolicyMaxBatch,
		"Current adaptive MaxBatch per cell type.",
		[]string{"cell_type"}, []string{typeKey})
	m.maxBatch[typeKey] = g
	return g
}
