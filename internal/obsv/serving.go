package obsv

import (
	"sort"
	"strconv"
	"sync"
	"time"
)

// Canonical metric family names. Every surface that exposes serving metrics
// (live server, sim runner, conformance harness) uses these exact names so
// dashboards work unchanged across real-time and virtual-time runs. The
// golden exposition test pins them.
const (
	MetricRequestsTotal       = "batchmaker_requests_total"
	MetricTaskRetries         = "batchmaker_task_retries_total"
	MetricCellPanics          = "batchmaker_cell_panics_total"
	MetricInflightRequests    = "batchmaker_inflight_requests"
	MetricQueuedCells         = "batchmaker_queued_cells"
	MetricReadyQueueDepth     = "batchmaker_ready_queue_depth"
	MetricWorkerQueueDepth    = "batchmaker_worker_queue_depth"
	MetricTasksExecuted       = "batchmaker_tasks_executed_total"
	MetricCellsExecuted       = "batchmaker_cells_executed_total"
	MetricBatchOccupancy      = "batchmaker_batch_occupancy"
	MetricBatchSlotsUsed      = "batchmaker_batch_slots_used_total"
	MetricBatchSlotsCap       = "batchmaker_batch_slots_total"
	MetricPaddingWasteRatio   = "batchmaker_padding_waste_ratio"
	MetricArenaHighWaterBytes = "batchmaker_arena_high_water_bytes"
	MetricQueuingSeconds      = "batchmaker_request_queuing_seconds"
	MetricComputationSeconds  = "batchmaker_request_computation_seconds"
	MetricTraceDropped        = "batchmaker_trace_events_dropped_total"
	MetricSpanWritten         = "batchmaker_span_records_written"
	MetricSpanDropped         = "batchmaker_span_records_dropped"
	MetricCellPrecision       = "batchmaker_cell_precision"
	MetricDeviceReadyDepth    = "batchmaker_device_ready_depth"
	MetricDeviceCopies        = "batchmaker_device_copies_total"
	MetricDevicePinMoves      = "batchmaker_device_pin_moves_total"
)

// Request outcome label values for MetricRequestsTotal.
const (
	OutcomeAdmitted  = "admitted"
	OutcomeCompleted = "completed"
	OutcomeFailed    = "failed"
	OutcomeRejected  = "rejected"
	OutcomeExpired   = "expired"
	OutcomeCancelled = "cancelled"
)

// BatchOccupancyBuckets are the inclusive upper bounds of the
// batch-occupancy histogram (rows actually batched per executed task).
var BatchOccupancyBuckets = []int64{1, 2, 4, 8, 16, 32, 64, 128, 256}

// quantileWindow is the bounded sample window behind the latency summaries.
const quantileWindow = 4096

var latencyQuantiles = []float64{0.5, 0.9, 0.99}

// TypeMetrics groups the per-cell-type handles a hot path caches once.
type TypeMetrics struct {
	// Ready is the scheduler's ready-queue depth for this cell type.
	Ready *Gauge
	// Tasks counts executed batched tasks of this type.
	Tasks *Counter
	// Cells counts executed cells (live batch rows) of this type.
	Cells *Counter
}

// WorkerMetrics groups the per-worker handles.
type WorkerMetrics struct {
	// Depth is the worker's task-queue depth (scheduler's view).
	Depth *Gauge
	// ArenaHighWater is the worker arena's high-water mark in bytes.
	ArenaHighWater *Gauge
}

// DeviceMetrics groups the per-device handles (§5 multi-device sharding).
type DeviceMetrics struct {
	// Ready is the device's attributed ready depth: each resident cell
	// type's ready nodes divided by its replica count.
	Ready *FloatGauge
	// Copies counts dispatched tasks that paid a cross-device copy (weight
	// fetch on a remote steal, or a migrated request's state movement).
	Copies *Counter
}

// ServingMetrics registers the serving stack's metric families in a
// Registry and hands out typed cells. All handles are safe on the zero/nil
// receiver path (a nil *ServingMetrics yields nil cells, which are no-ops),
// so instrumented code never branches on "is observability on".
type ServingMetrics struct {
	reg *Registry

	// Request lifecycle counters, one per outcome label.
	Admitted, Completed, Failed, Rejected, Expired, Cancelled *Counter
	// Retries counts transient task retries; Panics counts recovered cell
	// panics.
	Retries, Panics *Counter
	// Inflight is the number of admitted, unresolved requests; QueuedCells
	// is the admission controller's queued-cell backlog.
	Inflight, QueuedCells *Gauge
	// BatchOccupancy is the distribution of live rows per executed task.
	BatchOccupancy *Histogram
	// SlotsUsed / SlotsCap accumulate live rows vs maximum batch slots per
	// executed task; their ratio's complement is the padding-waste ratio.
	SlotsUsed, SlotsCap *Counter
	// PaddingWaste = 1 − SlotsUsed/SlotsCap, refreshed at exposition time.
	PaddingWaste *FloatGauge
	// Queuing / Computation are the paper's latency split: admit→first-exec
	// and first-exec→completion, as windowed quantiles.
	Queuing, Computation *Quantiles
	// TraceDropped mirrors the server trace ring's drop-oldest counter.
	TraceDropped *Gauge
	// PinMoves counts scheduler pin rebalances across devices.
	PinMoves *Counter

	mu      sync.Mutex
	types   map[string]*TypeMetrics
	workers map[int]*WorkerMetrics
	devices map[int]*DeviceMetrics
}

// NewServingMetrics registers the serving families in reg (which may be
// nil, yielding an inert instance whose handles are all no-ops).
func NewServingMetrics(reg *Registry) *ServingMetrics {
	m := &ServingMetrics{
		reg:     reg,
		types:   make(map[string]*TypeMetrics),
		workers: make(map[int]*WorkerMetrics),
		devices: make(map[int]*DeviceMetrics),
	}
	outcome := func(v string) *Counter {
		return reg.CounterVec(MetricRequestsTotal,
			"Requests by terminal outcome (admitted counts entries).",
			[]string{"outcome"}, []string{v})
	}
	m.Admitted = outcome(OutcomeAdmitted)
	m.Completed = outcome(OutcomeCompleted)
	m.Failed = outcome(OutcomeFailed)
	m.Rejected = outcome(OutcomeRejected)
	m.Expired = outcome(OutcomeExpired)
	m.Cancelled = outcome(OutcomeCancelled)
	m.Retries = reg.Counter(MetricTaskRetries, "Transient cell-task retries.")
	m.Panics = reg.Counter(MetricCellPanics, "Recovered cell panics.")
	m.Inflight = reg.Gauge(MetricInflightRequests, "Admitted requests not yet resolved.")
	m.QueuedCells = reg.Gauge(MetricQueuedCells, "Cells admitted but not yet executed (admission backlog).")
	m.BatchOccupancy = reg.Histogram(MetricBatchOccupancy,
		"Live rows batched per executed task.", BatchOccupancyBuckets)
	m.SlotsUsed = reg.Counter(MetricBatchSlotsUsed, "Live batch rows executed.")
	m.SlotsCap = reg.Counter(MetricBatchSlotsCap, "Maximum batch slots across executed tasks.")
	m.PaddingWaste = reg.FloatGauge(MetricPaddingWasteRatio,
		"1 - used/capacity batch slots: fraction of batch capacity wasted.")
	m.Queuing = reg.Summary(MetricQueuingSeconds,
		"Admit to first cell execution (paper's queuing latency).",
		quantileWindow, latencyQuantiles)
	m.Computation = reg.Summary(MetricComputationSeconds,
		"First cell execution to completion (paper's computation latency).",
		quantileWindow, latencyQuantiles)
	m.TraceDropped = reg.Gauge(MetricTraceDropped,
		"Trace events overwritten by the bounded trace ring.")
	m.PinMoves = reg.Counter(MetricDevicePinMoves,
		"Cell-type weight pins moved or replicated by the rebalancer.")
	reg.AddCollector(m.refreshPadding)
	return m
}

// Registry returns the backing registry (nil for an inert instance).
func (m *ServingMetrics) Registry() *Registry {
	if m == nil {
		return nil
	}
	return m.reg
}

func (m *ServingMetrics) refreshPadding() {
	used, cap := m.SlotsUsed.Value(), m.SlotsCap.Value()
	if cap > 0 {
		m.PaddingWaste.Set(1 - float64(used)/float64(cap))
	}
}

// Type returns (registering on first use) the per-cell-type handles for
// key. Not for hot paths — call once at setup and cache the result.
func (m *ServingMetrics) Type(key string) *TypeMetrics {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if t := m.types[key]; t != nil {
		return t
	}
	t := &TypeMetrics{
		Ready: m.reg.GaugeVec(MetricReadyQueueDepth,
			"Scheduler ready-queue depth (cells ready to batch).",
			[]string{"cell_type"}, []string{key}),
		Tasks: m.reg.CounterVec(MetricTasksExecuted,
			"Executed batched tasks.", []string{"cell_type"}, []string{key}),
		Cells: m.reg.CounterVec(MetricCellsExecuted,
			"Executed cells (live batch rows).", []string{"cell_type"}, []string{key}),
	}
	m.types[key] = t
	return t
}

// SetTypePrecision publishes the execution tier of a cell type as an
// info-style gauge: batchmaker_cell_precision{cell_type, precision} = 1.
// Call once at setup; a nil receiver is a no-op.
func (m *ServingMetrics) SetTypePrecision(key, precision string) {
	if m == nil {
		return
	}
	m.reg.GaugeVec(MetricCellPrecision,
		"Execution precision tier of the cell type (info gauge, value 1).",
		[]string{"cell_type", "precision"}, []string{key, precision}).Set(1)
}

// Worker returns (registering on first use) the per-worker handles.
func (m *ServingMetrics) Worker(id int) *WorkerMetrics {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if w := m.workers[id]; w != nil {
		return w
	}
	label := []string{strconv.Itoa(id)}
	w := &WorkerMetrics{
		Depth: m.reg.GaugeVec(MetricWorkerQueueDepth,
			"Tasks queued at the worker (scheduler's view).",
			[]string{"worker"}, label),
		ArenaHighWater: m.reg.GaugeVec(MetricArenaHighWaterBytes,
			"Worker tensor-arena high-water mark in bytes.",
			[]string{"worker"}, label),
	}
	m.workers[id] = w
	return w
}

// Device returns (registering on first use) the per-device handles.
func (m *ServingMetrics) Device(id int) *DeviceMetrics {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if d := m.devices[id]; d != nil {
		return d
	}
	label := []string{strconv.Itoa(id)}
	d := &DeviceMetrics{
		Ready: m.reg.FloatGaugeVec(MetricDeviceReadyDepth,
			"Ready-node depth attributed to the device (resident types / replicas).",
			[]string{"device"}, label),
		Copies: m.reg.CounterVec(MetricDeviceCopies,
			"Dispatched tasks that paid a cross-device copy.",
			[]string{"device"}, label),
	}
	m.devices[id] = d
	return d
}

// TypeStat is one cell type's executed-work totals, for summaries.
type TypeStat struct {
	Key          string
	Tasks, Cells int64
}

// TypesByCells returns per-type execution totals sorted by cells executed,
// descending (ties broken by key for determinism).
func (m *ServingMetrics) TypesByCells() []TypeStat {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	stats := make([]TypeStat, 0, len(m.types))
	for key, t := range m.types {
		stats = append(stats, TypeStat{Key: key, Tasks: t.Tasks.Value(), Cells: t.Cells.Value()})
	}
	m.mu.Unlock()
	sort.Slice(stats, func(i, j int) bool {
		if stats[i].Cells != stats[j].Cells {
			return stats[i].Cells > stats[j].Cells
		}
		return stats[i].Key < stats[j].Key
	})
	return stats
}

// ObserveLatencySplit records one completed request's queuing and
// computation durations.
func (m *ServingMetrics) ObserveLatencySplit(queuing, computation time.Duration) {
	if m == nil {
		return
	}
	m.Queuing.Observe(queuing)
	m.Computation.Observe(computation)
}
