package obsv

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// bundleFiles is the complete manifest every bundle must contain (plus
// health.json when a Health source is wired).
var bundleFiles = []string{
	"incident.json", "metrics.prom", "trace.json", "requests.jsonl",
	"rings.json", "goroutines.txt", "heap.pprof",
}

func listBundles(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		names = append(names, e.Name())
	}
	return names
}

// TestFlightRecorderForceWritesOneCompleteBundle is the acceptance test:
// a forced incident produces exactly one bundle, atomic (no .tmp residue),
// with every diagnosis artifact present and parseable.
func TestFlightRecorderForceWritesOneCompleteBundle(t *testing.T) {
	o := traceObserver()
	dir := t.TempDir()
	fr, err := NewFlightRecorder(o, FlightRecorderConfig{
		Dir:    dir,
		Health: func() Health { return Health{Status: "serving"} },
	})
	if err != nil {
		t.Fatal(err)
	}
	now := time.Now().UnixNano()
	path, err := fr.Force("", now)
	if err != nil {
		t.Fatal(err)
	}
	if path == "" {
		t.Fatal("forced incident wrote no bundle")
	}
	// Re-forcing inside the debounce window must NOT write a second bundle.
	if p2, err := fr.Force("again", now+int64(time.Second)); err != nil || p2 != "" {
		t.Fatalf("debounced force should be a silent no-op, got path=%q err=%v", p2, err)
	}
	names := listBundles(t, dir)
	if len(names) != 1 {
		t.Fatalf("spool holds %d entries, want exactly one bundle: %v", len(names), names)
	}
	if strings.HasSuffix(names[0], ".tmp") {
		t.Fatalf("bundle left staged as %s — rename never happened", names[0])
	}
	if !strings.HasPrefix(names[0], "incident-000001-forced") {
		t.Fatalf("bundle name %q", names[0])
	}

	for _, f := range append(append([]string{}, bundleFiles...), "health.json") {
		st, err := os.Stat(filepath.Join(path, f))
		if err != nil {
			t.Fatalf("bundle missing %s: %v", f, err)
		}
		if st.Size() == 0 && f != "requests.jsonl" {
			t.Fatalf("bundle artifact %s is empty", f)
		}
	}

	var inc Incident
	data, err := os.ReadFile(filepath.Join(path, "incident.json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &inc); err != nil {
		t.Fatalf("incident.json: %v", err)
	}
	if inc.Reason != IncidentForced || inc.UnixNs != now || inc.Seq != 1 {
		t.Fatalf("manifest %+v", inc)
	}
	if len(inc.Rings) == 0 {
		t.Fatal("manifest carries no ring stats")
	}

	var doc decodedTrace
	data, err = os.ReadFile(filepath.Join(path, "trace.json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("trace.json: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("bundle trace is empty for a populated observer")
	}

	data, err = os.ReadFile(filepath.Join(path, "metrics.prom"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "batchmaker_requests_total") {
		t.Fatal("metrics.prom is not a Prometheus exposition")
	}
}

// TestFlightRecorderLatchesPerRule: a persistently-true condition fires
// once, stays latched across ticks, and re-arms only after clearing. The
// debounce is set to 1ns so the latch — not the debounce — is what is
// being proven.
func TestFlightRecorderLatchesPerRule(t *testing.T) {
	o := NewObserver(NewRegistry(), 8, 1)
	fr, err := NewFlightRecorder(o, FlightRecorderConfig{
		Dir:      t.TempDir(),
		Debounce: time.Nanosecond,
		SLA:      10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	now := time.Now().UnixNano()
	tick := func(d time.Duration) []string {
		now += int64(d)
		return fr.Evaluate(now)
	}

	if fired := tick(0); len(fired) != 0 {
		t.Fatalf("healthy metrics fired %v", fired)
	}
	o.Metrics.Queuing.Observe(50 * time.Millisecond) // P99 breach vs the 10ms SLA
	if fired := tick(time.Second); len(fired) != 1 {
		t.Fatalf("SLA breach should fire exactly one bundle, got %v", fired)
	}
	if fired := tick(time.Second); len(fired) != 0 {
		t.Fatalf("latched rule re-fired: %v", fired)
	}
	// The quantile window decays after its horizon; simulate clearing by
	// observing fast samples until P99 is back under the SLA, then breach
	// again — the rule must have re-armed.
	for i := 0; i < 2000; i++ {
		o.Metrics.Queuing.Observe(time.Microsecond)
	}
	if fired := tick(time.Second); len(fired) != 0 {
		t.Fatalf("cleared condition fired %v", fired)
	}
	for i := 0; i < 2000; i++ {
		o.Metrics.Queuing.Observe(time.Second)
	}
	if fired := tick(time.Second); len(fired) != 1 {
		t.Fatalf("re-armed rule should fire again, got %v", fired)
	}
}

// TestFlightRecorderShedBurstAndStormRules covers the delta-based rules:
// a burst of rejections and a storm of pin moves each fire once.
func TestFlightRecorderShedBurstAndStormRules(t *testing.T) {
	o := NewObserver(NewRegistry(), 8, 1)
	fr, err := NewFlightRecorder(o, FlightRecorderConfig{
		Dir:      t.TempDir(),
		Debounce: time.Nanosecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	now := time.Now().UnixNano()

	o.Metrics.Rejected.Add(3) // under the default burst of 10
	if fired := fr.Evaluate(now); len(fired) != 0 {
		t.Fatalf("3 rejections fired %v", fired)
	}
	o.Metrics.Rejected.Add(20)
	now += int64(time.Second)
	fired := fr.Evaluate(now)
	if len(fired) != 1 || !strings.Contains(fired[0], IncidentShedBurst) {
		t.Fatalf("shed burst: %v", fired)
	}

	o.Metrics.PinMoves.Add(50)
	now += int64(time.Second)
	fired = fr.Evaluate(now)
	if len(fired) != 1 || !strings.Contains(fired[0], IncidentRebalanceStorm) {
		t.Fatalf("rebalance storm: %v", fired)
	}
}

// TestFlightRecorderSLOAndHealthRules covers the wired-source rules: SLO
// multi-window burn and journal degradation.
func TestFlightRecorderSLOAndHealthRules(t *testing.T) {
	o := NewObserver(NewRegistry(), 8, 1)
	slo := NewSLOEngine(nil, 0.99, 0)
	degraded := false
	fr, err := NewFlightRecorder(o, FlightRecorderConfig{
		Dir:      t.TempDir(),
		Debounce: time.Nanosecond,
		SLO:      slo,
		Health:   func() Health { return Health{JournalDegraded: degraded} },
	})
	if err != nil {
		t.Fatal(err)
	}
	now := time.Now().UnixNano()
	if fired := fr.Evaluate(now); len(fired) != 0 {
		t.Fatalf("quiet start fired %v", fired)
	}
	for i := 0; i < 10; i++ {
		slo.Observe(0, false, now) // 100% bad: burn far above 1 in both windows
	}
	fired := fr.Evaluate(now)
	if len(fired) != 1 || !strings.Contains(fired[0], IncidentSLOBurn) {
		t.Fatalf("slo burn: %v", fired)
	}

	degraded = true
	now += int64(time.Second)
	fired = fr.Evaluate(now)
	if len(fired) != 1 || !strings.Contains(fired[0], IncidentJournalDegrade) {
		t.Fatalf("journal degrade: %v", fired)
	}
}

// TestFlightRecorderSpoolBound: the spool never holds more than MaxBundles
// bundles; the oldest go first.
func TestFlightRecorderSpoolBound(t *testing.T) {
	dir := t.TempDir()
	fr, err := NewFlightRecorder(NewObserver(NewRegistry(), 8, 1), FlightRecorderConfig{
		Dir:        dir,
		MaxBundles: 2,
		Debounce:   time.Nanosecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	now := time.Now().UnixNano()
	for i := 0; i < 4; i++ {
		now += int64(time.Second)
		if _, err := fr.Force("forced", now); err != nil {
			t.Fatal(err)
		}
	}
	names := listBundles(t, dir)
	if len(names) != 2 {
		t.Fatalf("spool holds %d bundles, want 2: %v", len(names), names)
	}
	for _, n := range names {
		if n == "incident-000001-forced" || n == "incident-000002-forced" {
			t.Fatalf("oldest bundles should have been pruned, found %s", n)
		}
	}
}

// TestFlightRecorderRunStop: the detector goroutine starts, ticks, and
// stops cleanly.
func TestFlightRecorderRunStop(t *testing.T) {
	fr, err := NewFlightRecorder(NewObserver(NewRegistry(), 8, 1), FlightRecorderConfig{
		Dir:      t.TempDir(),
		Interval: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	fr.Run()
	time.Sleep(10 * time.Millisecond)
	fr.Stop()
}
