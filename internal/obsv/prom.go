package obsv

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// escapeLabel escapes a label value per the Prometheus text format 0.0.4.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, c := range v {
		switch c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(c)
		}
	}
	return b.String()
}

// labelString renders {k="v",...} for the given names/values, with optional
// extra (name, value) pairs appended (used for le/quantile).
func labelString(names, values []string, extra ...string) string {
	if len(names) == 0 && len(extra) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	first := true
	for i, n := range names {
		if !first {
			b.WriteByte(',')
		}
		first = false
		fmt.Fprintf(&b, "%s=%q", n, escapeLabel(values[i]))
	}
	for i := 0; i+1 < len(extra); i += 2 {
		if !first {
			b.WriteByte(',')
		}
		first = false
		fmt.Fprintf(&b, "%s=%q", extra[i], escapeLabel(extra[i+1]))
	}
	b.WriteByte('}')
	return b.String()
}

// formatFloat renders a float the way Prometheus clients do: integral values
// without an exponent, everything else in shortest form.
func formatFloat(v float64) string {
	if v == float64(int64(v)) {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// WritePromTo runs the registry's collectors and renders every family in
// Prometheus text exposition format 0.0.4. Families and series are emitted
// in sorted order so the output is deterministic (and golden-testable).
func (r *Registry) WritePromTo(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.collect()
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for n := range r.families {
		names = append(names, n)
	}
	sort.Strings(names)
	fams := make([]*family, len(names))
	for i, n := range names {
		fams[i] = r.families[n]
	}
	r.mu.Unlock()

	var b strings.Builder
	for _, f := range fams {
		// Snapshot the series list under the lock; cells themselves are
		// atomic so reading values afterwards is safe.
		r.mu.Lock()
		series := make([]*series, len(f.series))
		copy(series, f.series)
		r.mu.Unlock()
		sort.Slice(series, func(i, j int) bool {
			a, c := series[i].labels, series[j].labels
			for k := range a {
				if a[k] != c[k] {
					return a[k] < c[k]
				}
			}
			return false
		})

		fmt.Fprintf(&b, "# HELP %s %s\n", f.name, f.help)
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind.promType())
		for _, s := range series {
			ls := labelString(f.labelNames, s.labels)
			switch f.kind {
			case kindCounter:
				fmt.Fprintf(&b, "%s%s %d\n", f.name, ls, s.c.Value())
			case kindGauge:
				fmt.Fprintf(&b, "%s%s %d\n", f.name, ls, s.g.Value())
			case kindFloatGauge:
				fmt.Fprintf(&b, "%s%s %s\n", f.name, ls, formatFloat(s.fg.Value()))
			case kindHistogram:
				bounds, cum := s.h.Buckets()
				for i, ub := range bounds {
					fmt.Fprintf(&b, "%s_bucket%s %d\n", f.name,
						labelString(f.labelNames, s.labels, "le", fmt.Sprintf("%d", ub)), cum[i])
				}
				fmt.Fprintf(&b, "%s_bucket%s %d\n", f.name,
					labelString(f.labelNames, s.labels, "le", "+Inf"), s.h.Count())
				fmt.Fprintf(&b, "%s_sum%s %d\n", f.name, ls, s.h.Sum())
				fmt.Fprintf(&b, "%s_count%s %d\n", f.name, ls, s.h.Count())
			case kindSummary:
				qs, vals := s.q.Query()
				for i, q := range qs {
					fmt.Fprintf(&b, "%s%s %s\n", f.name,
						labelString(f.labelNames, s.labels, "quantile", formatFloat(q)),
						formatFloat(vals[i].Seconds()))
				}
				fmt.Fprintf(&b, "%s_sum%s %s\n", f.name, ls, formatFloat(s.q.Sum().Seconds()))
				fmt.Fprintf(&b, "%s_count%s %d\n", f.name, ls, s.q.Count())
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}
