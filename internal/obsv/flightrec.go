package obsv

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime/pprof"
	"sort"
	"strings"
	"sync"
	"time"
)

// Flight-recorder metric family names. Registered only when a recorder is
// wired, so recorder-off deployments keep the golden exposition unchanged.
const (
	MetricFlightIncidents = "batchmaker_flightrec_incidents_total"
	MetricFlightBundles   = "batchmaker_flightrec_bundles_total"
)

// Incident reasons (bundle directory suffixes).
const (
	IncidentForced         = "forced"
	IncidentSLABreach      = "sla_p99"
	IncidentSLOBurn        = "slo_burn"
	IncidentShedBurst      = "shed_burst"
	IncidentJournalDegrade = "journal_degraded"
	IncidentPolicyShed     = "policy_shed"
	IncidentRebalanceStorm = "rebalance_storm"
)

// FlightRecorderConfig configures the anomaly-triggered flight recorder.
type FlightRecorderConfig struct {
	// Dir is the bundle spool directory (created if missing). Required.
	Dir string
	// MaxBundles bounds the spool: oldest bundles are pruned beyond it
	// (<=0 means 8).
	MaxBundles int
	// Debounce is the minimum spacing between bundles, so one incident
	// produces exactly one bundle even when several detector rules fire
	// across consecutive ticks (<=0 means 5m).
	Debounce time.Duration
	// Interval is the detector evaluation period (<=0 means 5s).
	Interval time.Duration
	// SLA arms the P99-breach rule: queuing+computation P99 above it
	// triggers. 0 disables the rule.
	SLA time.Duration
	// Timelines is how many recent request timelines go into a bundle
	// (<=0 means 128).
	Timelines int
	// RejectBurst / PinMoveBurst are per-tick deltas that count as a shed
	// burst / rebalance storm (<=0 means 10 / 8).
	RejectBurst  int64
	PinMoveBurst int64
	// Health, SLO, and Policy arm the corresponding rules when non-nil.
	Health func() Health
	SLO    *SLOEngine
	Policy *PolicyMetrics
}

// Incident is the manifest written to a bundle's incident.json.
type Incident struct {
	Reason   string     `json:"reason"`
	UnixNs   int64      `json:"unix_ns"`
	Time     string     `json:"time"`
	Seq      int        `json:"seq"`
	Burn5m   float64    `json:"slo_burn_5m,omitempty"`
	Burn1h   float64    `json:"slo_burn_1h,omitempty"`
	QueueP99 float64    `json:"queuing_p99_seconds,omitempty"`
	CompP99  float64    `json:"computation_p99_seconds,omitempty"`
	Rings    []RingStat `json:"rings"`
}

// RingStat summarizes one span ring inside a bundle.
type RingStat struct {
	Name    string `json:"name"`
	Cap     int    `json:"cap"`
	Total   uint64 `json:"total"`
	Dropped uint64 `json:"dropped"`
}

// FlightRecorder is an always-on incident detector over the obsv registry.
// On trigger it atomically dumps a self-contained diagnosis bundle (frozen
// ring snapshot, metrics exposition, goroutine + heap profiles, request
// timelines, assembled trace) to a bounded on-disk spool. Detection runs on
// its own goroutine off the hot path; the serving pipeline never blocks on
// it.
type FlightRecorder struct {
	o   *Observer
	cfg FlightRecorderConfig

	incidents *Counter
	bundles   *Counter

	mu         sync.Mutex
	latched    map[string]bool
	lastDumpNs int64
	seq        int

	lastRejected int64
	lastPinMoves int64

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// NewFlightRecorder builds a recorder over o's rings and metrics. It does
// not start the detector goroutine — call Run (or drive Evaluate manually,
// as tests do).
func NewFlightRecorder(o *Observer, cfg FlightRecorderConfig) (*FlightRecorder, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("flightrec: Dir is required")
	}
	if cfg.MaxBundles <= 0 {
		cfg.MaxBundles = 8
	}
	if cfg.Debounce <= 0 {
		cfg.Debounce = 5 * time.Minute
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 5 * time.Second
	}
	if cfg.Timelines <= 0 {
		cfg.Timelines = 128
	}
	if cfg.RejectBurst <= 0 {
		cfg.RejectBurst = 10
	}
	if cfg.PinMoveBurst <= 0 {
		cfg.PinMoveBurst = 8
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, err
	}
	fr := &FlightRecorder{
		o:       o,
		cfg:     cfg,
		latched: make(map[string]bool),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	if o != nil && o.Metrics != nil {
		reg := o.Metrics.Registry()
		fr.incidents = reg.Counter(MetricFlightIncidents,
			"Incidents detected by the flight recorder.")
		fr.bundles = reg.Counter(MetricFlightBundles,
			"Flight-recorder bundles written to the spool.")
		fr.lastRejected = o.Metrics.Rejected.Value()
		fr.lastPinMoves = o.Metrics.PinMoves.Value()
	}
	return fr, nil
}

// Run starts the detector loop; Stop ends it.
func (fr *FlightRecorder) Run() {
	go func() {
		defer close(fr.done)
		t := time.NewTicker(fr.cfg.Interval)
		defer t.Stop()
		for {
			select {
			case <-fr.stop:
				return
			case now := <-t.C:
				fr.Evaluate(now.UnixNano())
			}
		}
	}()
}

// Stop halts the detector loop (idempotent; safe if Run was never called —
// but then it blocks forever on done, so only call Stop after Run).
func (fr *FlightRecorder) Stop() {
	fr.stopOnce.Do(func() { close(fr.stop) })
	<-fr.done
}

// p99 returns the P99 of a quantile summary in seconds (0 when empty).
func p99(q *Quantiles) float64 {
	if q == nil {
		return 0
	}
	qs, vals := q.Query()
	for i, frac := range qs {
		if frac == 0.99 {
			return vals[i].Seconds()
		}
	}
	return 0
}

// Evaluate runs one detector pass at nowNs and returns the bundle paths
// written (usually none). Each rule is latched: it fires once when its
// condition becomes true and re-arms only after the condition clears, so a
// persistent incident produces one bundle, not one per tick.
func (fr *FlightRecorder) Evaluate(nowNs int64) []string {
	fr.mu.Lock()
	defer fr.mu.Unlock()
	var fired []string
	check := func(reason string, active bool) {
		if !active {
			fr.latched[reason] = false
			return
		}
		if fr.latched[reason] {
			return
		}
		fr.latched[reason] = true
		fr.incidents.Inc()
		if dir, err := fr.dumpLocked(reason, nowNs); err == nil && dir != "" {
			fired = append(fired, dir)
		}
	}

	if sm := fr.metrics(); sm != nil {
		if fr.cfg.SLA > 0 {
			total := p99(sm.Queuing) + p99(sm.Computation)
			check(IncidentSLABreach, total > fr.cfg.SLA.Seconds())
		}
		rej := sm.Rejected.Value()
		check(IncidentShedBurst, rej-fr.lastRejected >= fr.cfg.RejectBurst)
		fr.lastRejected = rej
		pm := sm.PinMoves.Value()
		check(IncidentRebalanceStorm, pm-fr.lastPinMoves >= fr.cfg.PinMoveBurst)
		fr.lastPinMoves = pm
	}
	if fr.cfg.SLO != nil {
		check(IncidentSLOBurn, fr.cfg.SLO.Breached(nowNs))
	}
	if fr.cfg.Health != nil {
		check(IncidentJournalDegrade, fr.cfg.Health().JournalDegraded)
	}
	if fr.cfg.Policy != nil {
		check(IncidentPolicyShed, fr.cfg.Policy.Shedding.Value() == 1)
	}
	return fired
}

func (fr *FlightRecorder) metrics() *ServingMetrics {
	if fr.o == nil {
		return nil
	}
	return fr.o.Metrics
}

// Force triggers a bundle dump unconditionally (operator endpoint, tests).
// The debounce still applies, so repeated forcing within the window writes
// exactly one bundle; the returned path is empty when debounced.
func (fr *FlightRecorder) Force(reason string, nowNs int64) (string, error) {
	if reason == "" {
		reason = IncidentForced
	}
	fr.mu.Lock()
	defer fr.mu.Unlock()
	fr.incidents.Inc()
	return fr.dumpLocked(reason, nowNs)
}

// dumpLocked writes one bundle (debounce permitting). The bundle is staged
// in a ".tmp" directory and renamed into place, so readers of the spool
// never see a partial bundle.
func (fr *FlightRecorder) dumpLocked(reason string, nowNs int64) (string, error) {
	if fr.lastDumpNs != 0 && nowNs-fr.lastDumpNs < int64(fr.cfg.Debounce) {
		return "", nil
	}
	fr.lastDumpNs = nowNs
	fr.seq++
	name := fmt.Sprintf("incident-%06d-%s", fr.seq, reason)
	final := filepath.Join(fr.cfg.Dir, name)
	tmp := final + ".tmp"
	if err := os.MkdirAll(tmp, 0o755); err != nil {
		return "", err
	}
	if err := fr.writeBundle(tmp, reason, nowNs); err != nil {
		_ = os.RemoveAll(tmp)
		return "", err
	}
	if err := os.Rename(tmp, final); err != nil {
		_ = os.RemoveAll(tmp)
		return "", err
	}
	fr.bundles.Inc()
	fr.pruneLocked()
	return final, nil
}

func writeFile(dir, name string, fn func(f *os.File) error) error {
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}

func (fr *FlightRecorder) writeBundle(dir, reason string, nowNs int64) error {
	inc := Incident{
		Reason: reason,
		UnixNs: nowNs,
		Time:   time.Unix(0, nowNs).UTC().Format(time.RFC3339Nano),
		Seq:    fr.seq,
	}
	if fr.cfg.SLO != nil {
		inc.Burn5m = fr.cfg.SLO.BurnRate(SLOShortWindow, nowNs)
		inc.Burn1h = fr.cfg.SLO.BurnRate(SLOLongWindow, nowNs)
	}
	if sm := fr.metrics(); sm != nil {
		inc.QueueP99 = p99(sm.Queuing)
		inc.CompP99 = p99(sm.Computation)
	}
	for _, r := range fr.o.Rings() {
		inc.Rings = append(inc.Rings, RingStat{
			Name: r.Name(), Cap: r.Cap(), Total: r.Total(), Dropped: r.Dropped(),
		})
	}
	steps := []struct {
		name string
		fn   func(f *os.File) error
	}{
		{"incident.json", func(f *os.File) error {
			e := json.NewEncoder(f)
			e.SetIndent("", "  ")
			return e.Encode(inc)
		}},
		{"metrics.prom", func(f *os.File) error {
			if sm := fr.metrics(); sm != nil {
				return sm.Registry().WritePromTo(f)
			}
			return nil
		}},
		{"trace.json", func(f *os.File) error {
			return fr.o.WriteTrace(f, TraceOptions{})
		}},
		{"requests.jsonl", func(f *os.File) error {
			return fr.o.WriteRequestsJSONL(f, fr.cfg.Timelines)
		}},
		{"rings.json", func(f *os.File) error {
			type ringDump struct {
				RingStat
				Records []Record `json:"records"`
			}
			var dump []ringDump
			for _, r := range fr.o.Rings() {
				dump = append(dump, ringDump{
					RingStat: RingStat{Name: r.Name(), Cap: r.Cap(),
						Total: r.Total(), Dropped: r.Dropped()},
					Records: r.Snapshot(nil),
				})
			}
			return json.NewEncoder(f).Encode(dump)
		}},
		{"goroutines.txt", func(f *os.File) error {
			return pprof.Lookup("goroutine").WriteTo(f, 1)
		}},
		{"heap.pprof", func(f *os.File) error {
			return pprof.Lookup("heap").WriteTo(f, 0)
		}},
	}
	if fr.cfg.Health != nil {
		steps = append(steps, struct {
			name string
			fn   func(f *os.File) error
		}{"health.json", func(f *os.File) error {
			return json.NewEncoder(f).Encode(fr.cfg.Health())
		}})
	}
	for _, s := range steps {
		if err := writeFile(dir, s.name, s.fn); err != nil {
			return fmt.Errorf("flightrec: %s: %w", s.name, err)
		}
	}
	return nil
}

// pruneLocked keeps the spool bounded: oldest bundles (lowest sequence
// numbers) beyond MaxBundles are removed.
func (fr *FlightRecorder) pruneLocked() {
	entries, err := os.ReadDir(fr.cfg.Dir)
	if err != nil {
		return
	}
	var bundles []string
	for _, e := range entries {
		if e.IsDir() && strings.HasPrefix(e.Name(), "incident-") &&
			!strings.HasSuffix(e.Name(), ".tmp") {
			bundles = append(bundles, e.Name())
		}
	}
	sort.Strings(bundles) // zero-padded seq: lexicographic = chronological
	for len(bundles) > fr.cfg.MaxBundles {
		_ = os.RemoveAll(filepath.Join(fr.cfg.Dir, bundles[0]))
		bundles = bundles[1:]
	}
}
