package obsv

import (
	"strings"
	"testing"
	"time"
)

func TestSLOBurnMath(t *testing.T) {
	e := NewSLOEngine(nil, 0.99, 100*time.Millisecond) // budget = 1%
	now := time.Now().UnixNano()

	// 99 good + 1 bad = burning the 1% budget exactly at the sustainable
	// rate → burn 1.0 (up to float rounding of the budget).
	for i := 0; i < 99; i++ {
		e.Observe(int64(time.Millisecond), true, now)
	}
	e.Observe(0, false, now)
	if burn := e.BurnRate(SLOShortWindow, now); burn < 0.999 || burn > 1.001 {
		t.Fatalf("1%% bad against a 1%% budget should burn ~1.0, got %f", burn)
	}

	// Four more bad → 5/104 bad ≈ burn 4.8: breached in both windows.
	for i := 0; i < 4; i++ {
		e.Observe(0, false, now)
	}
	if !e.Breached(now) {
		t.Fatalf("burn %f should breach", e.BurnRate(SLOShortWindow, now))
	}
}

func TestSLOLatencyCountsAgainstTarget(t *testing.T) {
	e := NewSLOEngine(nil, 0.999, 50*time.Millisecond)
	now := time.Now().UnixNano()
	e.Observe(int64(10*time.Millisecond), true, now) // inside target
	e.Observe(int64(90*time.Millisecond), true, now) // completed but slow = bad
	e.Observe(0, false, now)                         // failed = bad
	good, bad := e.Totals(SLOShortWindow, now)
	if good != 1 || bad != 2 {
		t.Fatalf("good=%d bad=%d, want 1/2 (slow completions burn budget)", good, bad)
	}
}

// TestSLOWindowSeparation: events older than the short window drop out of
// the 5m burn but stay in the 1h burn — the mechanism behind the
// multi-window alert.
func TestSLOWindowSeparation(t *testing.T) {
	e := NewSLOEngine(nil, 0.99, 0)
	base := time.Now().UnixNano()

	e.Observe(0, false, base) // bad, at t=0
	later := base + int64(10*time.Minute)
	e.Observe(0, true, later) // good, 10 minutes later

	if _, bad := e.Totals(SLOShortWindow, later); bad != 0 {
		t.Fatalf("5m window still sees the old bad event (bad=%d)", bad)
	}
	if _, bad := e.Totals(SLOLongWindow, later); bad != 1 {
		t.Fatalf("1h window lost the old bad event (bad=%d)", bad)
	}
	if e.Breached(later) {
		t.Fatal("a spike the short window has forgotten must not breach")
	}
}

// TestSLOBucketRecycling: an event a full ring-period later lands in the
// same bucket slot and must reset it, not accumulate into year-old counts.
func TestSLOBucketRecycling(t *testing.T) {
	e := NewSLOEngine(nil, 0.99, 0)
	base := time.Now().UnixNano()
	e.Observe(0, false, base)
	wrapped := base + int64(SLOLongWindow) // same slot, different second
	e.Observe(0, true, wrapped)
	good, bad := e.Totals(SLOLongWindow, wrapped)
	if good != 1 || bad != 0 {
		t.Fatalf("recycled bucket kept stale counts: good=%d bad=%d", good, bad)
	}
}

func TestSLOObjectiveClamping(t *testing.T) {
	if got := NewSLOEngine(nil, 0.1, 0).Objective(); got != 0.5 {
		t.Fatalf("objective 0.1 should clamp to 0.5, got %f", got)
	}
	if got := NewSLOEngine(nil, 1.0, 0).Objective(); got != 0.99999 {
		t.Fatalf("objective 1.0 should clamp to 0.99999, got %f", got)
	}
}

func TestSLONilSafety(t *testing.T) {
	var e *SLOEngine
	e.Observe(1, true, 1)
	if g, b := e.Totals(time.Minute, 1); g != 0 || b != 0 {
		t.Fatal("nil Totals")
	}
	if e.BurnRate(time.Minute, 1) != 0 || e.Breached(1) {
		t.Fatal("nil burn")
	}
	if e.Objective() != 0 || e.TargetNs() != 0 {
		t.Fatal("nil accessors")
	}
}

// TestSLOExposition: with a registry wired, the batchmaker_slo_* families
// render; the golden exposition elsewhere proves they stay absent when no
// engine is built.
func TestSLOExposition(t *testing.T) {
	reg := NewRegistry()
	e := NewSLOEngine(reg, 0.999, 50*time.Millisecond)
	now := time.Now().UnixNano()
	e.Observe(int64(time.Millisecond), true, now)
	e.Observe(0, false, now)
	var b strings.Builder
	if err := reg.WritePromTo(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, fam := range []string{
		MetricSLOObjective, MetricSLOGood, MetricSLOBad,
		MetricSLOBurnRate, MetricSLOBudgetRemaining,
	} {
		if !strings.Contains(out, fam) {
			t.Fatalf("exposition missing %s:\n%s", fam, out)
		}
	}
}
