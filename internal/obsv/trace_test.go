package obsv

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
)

// traceBaseNs is the fixture's first timestamp: a realistic unix-ns value,
// so the golden also proves the rebasing keeps sub-microsecond resolution
// at magnitudes where float64 microseconds alone could not.
const traceBaseNs = int64(1_700_000_000_000_000_000)

// traceObserver plays a deterministic two-request history across every
// track the assembler knows: admits and terminals on the request
// processor, a group-commit flush + fsync + durability acks on the journal
// lanes, a dispatch and a rebalance on the scheduler, and first-exec +
// batched task-exec slices on two workers across two device pools.
func traceObserver() *Observer {
	o := NewObserver(NewRegistry(), 64, 1)
	o.InternType("lstm") // type ID 1
	o.SetTypeDetail("lstm", TypeDetail{MaxBatch: 8, Precision: "f32"})
	rp := o.NewRing("rp")
	sched := o.NewRing("sched")
	w0 := o.NewRing("worker-0")
	w1 := o.NewRing("worker-1")
	jw := o.NewRing("journal-writer")
	js := o.NewRing("journal-syncer")

	at := func(us int64) int64 { return traceBaseNs + us*1000 }

	rp.Write(Record{Kind: KindAdmit, Req: 1, T0: at(0)})
	rp.Write(Record{Kind: KindAdmit, Req: 2, T0: at(5)})
	rp.Write(Record{Kind: KindPolicyShed, T0: at(8)})
	rp.Write(Record{Kind: KindReject, T0: at(9)})
	jw.Write(Record{Kind: KindJournalFlush, Worker: JournalWriterLane, Batch: 2, T0: at(10), T1: at(40)})
	js.Write(Record{Kind: KindJournalFsync, Worker: JournalSyncerLane, Batch: 2, T0: at(45), T1: at(90)})
	js.Write(Record{Kind: KindJournalDurable, Worker: JournalSyncerLane, Req: 1, T0: at(95)})
	js.Write(Record{Kind: KindJournalDurable, Worker: JournalSyncerLane, Req: 2, T0: at(96)})
	sched.Write(Record{Kind: KindDispatch, Worker: 0, Type: 1, Batch: 2, Queue: 1, T0: at(100)})
	w0.Write(Record{Kind: KindFirstExec, Worker: 0, Batch: 2, Req: 1, T0: at(110)})
	w0.Write(Record{Kind: KindFirstExec, Worker: 0, Batch: 2, Req: 2, T0: at(111)})
	w0.Write(Record{Kind: KindTaskExec, Worker: 0, Type: 1, Batch: 2, Queue: 1, T0: at(100), T1: at(400)})
	// A second device pool's worker running a migrated remote batch.
	sched.Write(Record{Kind: KindDispatch, Worker: 1, Type: 1, Batch: 1, Device: 1,
		Flags: FlagRemote | FlagMigrated, T0: at(150)})
	w1.Write(Record{Kind: KindTaskExec, Worker: 1, Type: 1, Batch: 1, Device: 1,
		Flags: FlagRemote | FlagMigrated, T0: at(150), T1: at(300)})
	w1.Write(Record{Kind: KindRetry, Worker: 1, Type: 1, Batch: 1, Device: 1, T0: at(310)})
	sched.Write(Record{Kind: KindRebalance, Batch: 3, T0: at(420)})
	rp.Write(Record{Kind: KindPolicyBatch, Type: 1, Batch: 6, T0: at(430)})
	rp.Write(Record{Kind: KindComplete, Req: 1, T0: at(500)})
	rp.Write(Record{Kind: KindFail, Req: 2, T0: at(510)})
	return o
}

const traceGoldenPath = "testdata/trace_golden.json"

// TestTraceGolden pins the exact trace-event JSON the assembler produces
// for the fixture history — event names, phases, track IDs, flow
// bindings, args, and timestamp rebasing. A diff here means saved traces
// and Perfetto dashboards change meaning: regenerate deliberately with
// GOLDEN_OUT=1 go test ./internal/obsv -run TestTraceGolden
func TestTraceGolden(t *testing.T) {
	var b bytes.Buffer
	if err := traceObserver().WriteTrace(&b, TraceOptions{}); err != nil {
		t.Fatal(err)
	}
	if os.Getenv("GOLDEN_OUT") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(traceGoldenPath, b.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", traceGoldenPath, b.Len())
		return
	}
	want, err := os.ReadFile(traceGoldenPath)
	if err != nil {
		t.Fatalf("missing golden (regenerate with GOLDEN_OUT=1): %v", err)
	}
	if !bytes.Equal(b.Bytes(), want) {
		t.Fatalf("trace drifted from golden.\n--- got ---\n%s\n--- want ---\n%s", b.String(), want)
	}
}

// decodedTrace is the generic shape the schema checks read the JSON into.
type decodedTrace struct {
	DisplayTimeUnit string `json:"displayTimeUnit"`
	// BaseUnixNs decodes into an int64 so the check is exact — a float64
	// round-trip at unix-ns magnitude loses the low bits (which is the
	// whole reason WriteTrace rebases timestamps).
	OtherData struct {
		BaseUnixNs int64  `json:"base_unix_ns"`
		Source     string `json:"source"`
	} `json:"otherData"`
	TraceEvents []struct {
		Name string         `json:"name"`
		Ph   string         `json:"ph"`
		Ts   float64        `json:"ts"`
		Dur  *float64       `json:"dur"`
		Pid  int            `json:"pid"`
		Tid  int            `json:"tid"`
		ID   int64          `json:"id"`
		BP   string         `json:"bp"`
		S    string         `json:"s"`
		Args map[string]any `json:"args"`
	} `json:"traceEvents"`
}

func decodeTrace(t *testing.T, o *Observer, opt TraceOptions) decodedTrace {
	t.Helper()
	var b bytes.Buffer
	if err := o.WriteTrace(&b, opt); err != nil {
		t.Fatal(err)
	}
	var doc decodedTrace
	if err := json.Unmarshal(b.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v\n%s", err, b.String())
	}
	return doc
}

// TestTraceSchemaValid checks the structural invariants a Perfetto load
// depends on, independently of the golden bytes: known phases, declared
// tracks, non-negative rebased timestamps and durations.
func TestTraceSchemaValid(t *testing.T) {
	doc := decodeTrace(t, traceObserver(), TraceOptions{})
	if doc.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit %q", doc.DisplayTimeUnit)
	}
	if doc.OtherData.BaseUnixNs != traceBaseNs {
		t.Fatalf("otherData.base_unix_ns = %d, want %d", doc.OtherData.BaseUnixNs, traceBaseNs)
	}
	threads := map[[2]int]bool{}
	procs := map[int]bool{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "M" {
			continue
		}
		switch ev.Name {
		case "process_name":
			procs[ev.Pid] = true
		case "thread_name":
			threads[[2]int{ev.Pid, ev.Tid}] = true
		default:
			t.Fatalf("unknown metadata event %q", ev.Name)
		}
	}
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "M":
			continue
		case "X", "i", "s", "t", "f":
		default:
			t.Fatalf("unknown phase %q on event %q", ev.Ph, ev.Name)
		}
		if ev.Ts < 0 {
			t.Fatalf("event %q has negative rebased ts %f", ev.Name, ev.Ts)
		}
		if ev.Ph == "X" && (ev.Dur == nil || *ev.Dur < 0) {
			t.Fatalf("slice %q has missing or negative dur", ev.Name)
		}
		if !procs[ev.Pid] || !threads[[2]int{ev.Pid, ev.Tid}] {
			t.Fatalf("event %q on undeclared track pid=%d tid=%d", ev.Name, ev.Pid, ev.Tid)
		}
		if ev.Ph == "i" && ev.S != "t" {
			t.Fatalf("instant %q missing thread scope", ev.Name)
		}
		if ev.Ph == "f" && ev.BP != "e" {
			t.Fatalf("flow end %q must bind to its enclosing slice (bp=e)", ev.Name)
		}
	}
	// Annotated batch slice: occupancy/padding/precision resolved from the
	// type detail, flags decoded.
	var sawAnnotated bool
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" || ev.Name != "lstm" || ev.Args == nil {
			continue
		}
		if ev.Args["remote"] == true && ev.Args["migrated"] == true {
			sawAnnotated = true
			if occ, ok := ev.Args["occupancy"].(float64); !ok || occ != 1.0/8 {
				t.Fatalf("remote slice occupancy = %v, want 0.125", ev.Args["occupancy"])
			}
			if pw, ok := ev.Args["padding_waste"].(float64); !ok || pw != 7 {
				t.Fatalf("remote slice padding_waste = %v, want 7", ev.Args["padding_waste"])
			}
			if ev.Args["precision"] != "f32" {
				t.Fatalf("remote slice precision = %v", ev.Args["precision"])
			}
		}
	}
	if !sawAnnotated {
		t.Fatal("no annotated remote+migrated batch slice in the trace")
	}
}

// TestTraceFlowChains asserts the causal arrows: each completed request
// has a flow start on the request-processor track, flow steps through the
// journal-syncer and worker tracks, and a flow end back on the
// request-processor track — at least one arrow crossing from the pipeline
// process into a device-pool process.
func TestTraceFlowChains(t *testing.T) {
	doc := decodeTrace(t, traceObserver(), TraceOptions{})
	type hop struct {
		ph  string
		pid int
		ts  float64
	}
	flows := map[int64][]hop{}
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "s", "t", "f":
			flows[ev.ID] = append(flows[ev.ID], hop{ev.Ph, ev.Pid, ev.Ts})
		}
	}
	for _, req := range []int64{1, 2} {
		hops := flows[req]
		if len(hops) < 3 {
			t.Fatalf("req %d has %d flow hops, want at least s→t→f", req, len(hops))
		}
		if hops[0].ph != "s" || hops[0].pid != tracePidPipeline {
			t.Fatalf("req %d flow must start on the pipeline track: %+v", req, hops[0])
		}
		last := hops[len(hops)-1]
		if last.ph != "f" || last.pid != tracePidPipeline {
			t.Fatalf("req %d flow must end on the pipeline track: %+v", req, last)
		}
		cross := false
		for i, h := range hops {
			if h.pid >= tracePidDeviceOff {
				cross = true
			}
			if i > 0 && h.ts < hops[i-1].ts {
				t.Fatalf("req %d flow hops go backwards in time: %+v", req, hops)
			}
			if i > 0 && i < len(hops)-1 && h.ph != "t" {
				t.Fatalf("req %d interior hop must be a step: %+v", req, h)
			}
		}
		if !cross {
			t.Fatalf("req %d flow never crosses into a device-pool track: %+v", req, hops)
		}
	}
}

// TestTraceSinceFilter drops records older than the cutoff and rebases to
// the new earliest record.
func TestTraceSinceFilter(t *testing.T) {
	cut := traceBaseNs + 420*1000
	doc := decodeTrace(t, traceObserver(), TraceOptions{SinceNs: cut})
	if doc.OtherData.BaseUnixNs != cut {
		t.Fatalf("since filter should rebase to the cutoff-era earliest record, got base %d", doc.OtherData.BaseUnixNs)
	}
	for _, ev := range doc.TraceEvents {
		if ev.Name == "admit" {
			t.Fatal("admit slices predate the cutoff and must be filtered")
		}
	}
}

// TestTraceEmptyAndNil: an observer with no records (and a nil observer)
// must still produce a loadable document with an events array.
func TestTraceEmptyAndNil(t *testing.T) {
	for name, o := range map[string]*Observer{
		"empty": NewObserver(NewRegistry(), 8, 1),
		"nil":   nil,
	} {
		var b bytes.Buffer
		if err := o.WriteTrace(&b, TraceOptions{}); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !strings.Contains(b.String(), `"traceEvents":[]`) {
			t.Fatalf("%s: traceEvents must be an empty array, got %s", name, b.String())
		}
	}
}

// TestDebugTraceEndpoint smokes /debug/trace, including the ?since=
// parameter.
func TestDebugTraceEndpoint(t *testing.T) {
	srv := httptest.NewServer(Handler(traceObserver(), nil))
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/debug/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var doc decodedTrace
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatalf("endpoint body is not a trace document: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("endpoint returned an empty trace for a populated observer")
	}

	since := fmt.Sprintf("%d", traceBaseNs+500*1000)
	resp2, err := srv.Client().Get(srv.URL + "/debug/trace?since=" + since)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var filtered decodedTrace
	if err := json.NewDecoder(resp2.Body).Decode(&filtered); err != nil {
		t.Fatal(err)
	}
	if len(filtered.TraceEvents) >= len(doc.TraceEvents) {
		t.Fatalf("since filter kept %d of %d events — filter not applied",
			len(filtered.TraceEvents), len(doc.TraceEvents))
	}
}
