package obsv

import (
	"sync"
	"testing"
)

func TestRingPackUnpackRoundTrip(t *testing.T) {
	recs := []Record{
		{Kind: KindAdmit, Req: 42, T0: 1000},
		{Kind: KindTaskExec, Worker: 3, Type: 7, Batch: 65535, Queue: 12, T0: 5, T1: 9},
		{Kind: KindPanic, Worker: 255, Type: 65535, Batch: 1, Queue: 65535},
		{Kind: KindDispatch, Worker: 9, Batch: 4, Device: 255, Flags: FlagRemote | FlagMigrated, T0: 2},
		{Kind: KindJournalDurable, Worker: JournalSyncerLane, Req: 7, T0: 3},
	}
	for _, want := range recs {
		got := unpack(pack(want), packAux(want))
		got.Req, got.T0, got.T1 = want.Req, want.T0, want.T1
		if got != want {
			t.Fatalf("round trip: got %+v want %+v", got, want)
		}
	}
}

func TestRingCapacityRounding(t *testing.T) {
	if got := NewRing("x", 0).Cap(); got != DefaultRingCapacity {
		t.Fatalf("default capacity: got %d", got)
	}
	if got := NewRing("x", 5).Cap(); got != 8 {
		t.Fatalf("capacity 5 should round to 8, got %d", got)
	}
	if got := NewRing("x", 8).Cap(); got != 8 {
		t.Fatalf("capacity 8 should stay 8, got %d", got)
	}
}

func TestRingOverwriteAndDropCounting(t *testing.T) {
	r := NewRing("x", 4)
	for i := 1; i <= 10; i++ {
		r.Write(Record{Kind: KindAdmit, Req: int64(i), T0: int64(i)})
	}
	if got := r.Total(); got != 10 {
		t.Fatalf("total: got %d want 10", got)
	}
	if got := r.Dropped(); got != 6 {
		t.Fatalf("dropped: got %d want 6", got)
	}
	snap := r.Snapshot(nil)
	if len(snap) != 4 {
		t.Fatalf("snapshot length: got %d want 4", len(snap))
	}
	for i, rec := range snap {
		if want := int64(7 + i); rec.Req != want {
			t.Fatalf("snapshot[%d].Req = %d, want %d (oldest-first, most recent retained)", i, rec.Req, want)
		}
	}
}

func TestNilRingIsSafe(t *testing.T) {
	var r *Ring
	r.Write(Record{Kind: KindAdmit})
	if r.Total() != 0 || r.Dropped() != 0 || r.Cap() != 0 || r.Name() != "" {
		t.Fatal("nil ring should report zeros")
	}
	if got := r.Snapshot(nil); got != nil {
		t.Fatalf("nil ring snapshot: got %v", got)
	}
}

// TestRingConcurrentWriteSnapshot hammers one writer against many snapshot
// readers. Run under -race this is the data-race regression test for the
// seqlock protocol; in any mode it asserts no torn record escapes: every
// snapshotted record must be internally consistent (Req == T0 == T1 by
// construction).
func TestRingConcurrentWriteSnapshot(t *testing.T) {
	r := NewRing("x", 64)
	const writes = 20000
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 1; i <= writes; i++ {
			v := int64(i)
			r.Write(Record{Kind: KindTaskExec, Batch: uint16(i % 100), Req: v, T0: v, T1: v})
		}
	}()

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := make([]Record, 0, 64)
			for {
				select {
				case <-done:
					return
				default:
				}
				buf = r.Snapshot(buf[:0])
				for _, rec := range buf {
					if rec.Req != rec.T0 || rec.Req != rec.T1 {
						t.Errorf("torn record: %+v", rec)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	<-done
	if got := r.Total(); got != writes {
		t.Fatalf("total: got %d want %d", got, writes)
	}
}

// TestRingWriteDoesNotAllocate pins the hot-path property the zero-alloc
// worker gate depends on.
func TestRingWriteDoesNotAllocate(t *testing.T) {
	r := NewRing("x", 16)
	rec := Record{Kind: KindTaskExec, Worker: 1, Type: 2, Batch: 3, Queue: 4, T0: 5, T1: 6}
	allocs := testing.AllocsPerRun(1000, func() { r.Write(rec) })
	if allocs != 0 {
		t.Fatalf("Ring.Write allocates %.1f objects/op, want 0", allocs)
	}
}
