package obsv

import (
	"sync"
	"testing"
)

// TestTimelineAdmitOverwritten: a request whose admit record was
// overwritten by the bounded ring still reconstructs — terminal without
// admit, no since_admit_ns anywhere, and the omission reason set.
func TestTimelineAdmitOverwritten(t *testing.T) {
	o := NewObserver(NewRegistry(), 4, 1)
	rp := o.NewRing("rp")
	rp.Write(Record{Kind: KindAdmit, Req: 1, T0: 100})
	// Four younger admits push req 1's admit out of the 4-slot ring.
	for i := int64(2); i <= 5; i++ {
		rp.Write(Record{Kind: KindAdmit, Req: i, T0: 100 + i})
	}
	rp.Write(Record{Kind: KindComplete, Req: 1, T0: 900})

	var one *Timeline
	for _, tl := range o.Timelines(0) {
		if tl.Req == 1 {
			one = tl
		}
	}
	if one == nil {
		t.Fatal("req 1's terminal was retained but no timeline was built")
	}
	if len(one.Events) != 1 || one.Events[0].Kind != "complete" {
		t.Fatalf("req 1 should be terminal-only: %+v", one.Events)
	}
	if one.Outcome != "complete" {
		t.Fatalf("outcome %q", one.Outcome)
	}
	if one.SinceAdmitOmitted != "admit_overwritten" {
		t.Fatalf("omission reason %q, want admit_overwritten", one.SinceAdmitOmitted)
	}
	if one.QueuingNs != 0 || one.ComputationNs != 0 {
		t.Fatalf("latency split cannot be computed without an admit: %+v", one)
	}
	for _, e := range one.Events {
		if e.SinceAdmitNs != 0 {
			t.Fatalf("event carries since_admit_ns %d with no admit to anchor it", e.SinceAdmitNs)
		}
	}
}

// TestTimelineNoNegativeSinceAdmit: even with cross-ring clock skew (a
// first-exec stamped before the admit it belongs to), reconstruction
// never emits a negative since_admit_ns.
func TestTimelineNoNegativeSinceAdmit(t *testing.T) {
	o := NewObserver(NewRegistry(), 16, 1)
	rp := o.NewRing("rp")
	w0 := o.NewRing("worker-0")
	// Worker clock reads 95 while the rp clock stamped the admit at 100.
	w0.Write(Record{Kind: KindFirstExec, Req: 7, T0: 95})
	rp.Write(Record{Kind: KindAdmit, Req: 7, T0: 100})
	rp.Write(Record{Kind: KindComplete, Req: 7, T0: 300})

	tls := o.Timelines(0)
	if len(tls) != 1 {
		t.Fatalf("want 1 timeline, got %d", len(tls))
	}
	for _, e := range tls[0].Events {
		if e.SinceAdmitNs < 0 {
			t.Fatalf("negative since_admit_ns %d on %s", e.SinceAdmitNs, e.Kind)
		}
	}
}

// TestTimelineWorkerFieldsOnExec: first_exec events carry the executing
// worker, device, and batch size; lifecycle events don't.
func TestTimelineWorkerFieldsOnExec(t *testing.T) {
	o := NewObserver(NewRegistry(), 16, 1)
	rp := o.NewRing("rp")
	w := o.NewRing("worker-3")
	rp.Write(Record{Kind: KindAdmit, Req: 1, T0: 100})
	w.Write(Record{Kind: KindFirstExec, Req: 1, Worker: 3, Device: 1, Batch: 6, T0: 200})
	rp.Write(Record{Kind: KindComplete, Req: 1, T0: 300})

	tl := o.Timelines(0)[0]
	for _, e := range tl.Events {
		switch e.Kind {
		case "first_exec":
			if e.Worker == nil || *e.Worker != 3 || e.Device == nil || *e.Device != 1 || e.Batch != 6 {
				t.Fatalf("exec event lost its lane: %+v", e)
			}
		default:
			if e.Worker != nil || e.Device != nil || e.Batch != 0 {
				t.Fatalf("%s event should not carry exec fields: %+v", e.Kind, e)
			}
		}
	}
}

// TestTimelineUnderConcurrentOverwrite reconstructs timelines while a
// writer is overwriting the same small ring. Run under -race this proves
// the seqlock read side; structurally, every observed timeline must obey
// the no-negative-since-admit invariant even when its records are being
// torn out from under the reader.
func TestTimelineUnderConcurrentOverwrite(t *testing.T) {
	o := NewObserver(NewRegistry(), 8, 1)
	rp := o.NewRing("rp")
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := int64(1); ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			rp.Write(Record{Kind: KindAdmit, Req: i, T0: i * 10})
			rp.Write(Record{Kind: KindFirstExec, Req: i, T0: i*10 + 3})
			rp.Write(Record{Kind: KindComplete, Req: i, T0: i*10 + 7})
		}
	}()
	for n := 0; n < 200; n++ {
		for _, tl := range o.Timelines(0) {
			for _, e := range tl.Events {
				if e.SinceAdmitNs < 0 {
					t.Errorf("req %d: negative since_admit_ns %d", tl.Req, e.SinceAdmitNs)
				}
			}
			if tl.QueuingNs < 0 || tl.ComputationNs < 0 {
				t.Errorf("req %d: negative latency split %+v", tl.Req, tl)
			}
		}
	}
	close(stop)
	wg.Wait()
}
