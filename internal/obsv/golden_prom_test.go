package obsv

// goldenProm is the pinned Prometheus exposition of goldenObserver().
// Regenerate deliberately with:
//
//	GOLDEN_OUT=/tmp/golden.prom go test ./internal/obsv -run TestRegenPromGolden
//
// and paste the file here.
const goldenProm = `# HELP batchmaker_arena_high_water_bytes Worker tensor-arena high-water mark in bytes.
# TYPE batchmaker_arena_high_water_bytes gauge
batchmaker_arena_high_water_bytes{worker="0"} 4096
# HELP batchmaker_batch_occupancy Live rows batched per executed task.
# TYPE batchmaker_batch_occupancy histogram
batchmaker_batch_occupancy_bucket{le="1"} 1
batchmaker_batch_occupancy_bucket{le="2"} 2
batchmaker_batch_occupancy_bucket{le="4"} 2
batchmaker_batch_occupancy_bucket{le="8"} 5
batchmaker_batch_occupancy_bucket{le="16"} 5
batchmaker_batch_occupancy_bucket{le="32"} 5
batchmaker_batch_occupancy_bucket{le="64"} 6
batchmaker_batch_occupancy_bucket{le="128"} 6
batchmaker_batch_occupancy_bucket{le="256"} 6
batchmaker_batch_occupancy_bucket{le="+Inf"} 7
batchmaker_batch_occupancy_sum 360
batchmaker_batch_occupancy_count 7
# HELP batchmaker_batch_slots_total Maximum batch slots across executed tasks.
# TYPE batchmaker_batch_slots_total counter
batchmaker_batch_slots_total 480
# HELP batchmaker_batch_slots_used_total Live batch rows executed.
# TYPE batchmaker_batch_slots_used_total counter
batchmaker_batch_slots_used_total 360
# HELP batchmaker_cell_panics_total Recovered cell panics.
# TYPE batchmaker_cell_panics_total counter
batchmaker_cell_panics_total 1
# HELP batchmaker_cells_executed_total Executed cells (live batch rows).
# TYPE batchmaker_cells_executed_total counter
batchmaker_cells_executed_total{cell_type="decoder"} 6
batchmaker_cells_executed_total{cell_type="lstm"} 40
# HELP batchmaker_device_copies_total Dispatched tasks that paid a cross-device copy.
# TYPE batchmaker_device_copies_total counter
batchmaker_device_copies_total{device="0"} 3
batchmaker_device_copies_total{device="1"} 1
# HELP batchmaker_device_pin_moves_total Cell-type weight pins moved or replicated by the rebalancer.
# TYPE batchmaker_device_pin_moves_total counter
batchmaker_device_pin_moves_total 2
# HELP batchmaker_device_ready_depth Ready-node depth attributed to the device (resident types / replicas).
# TYPE batchmaker_device_ready_depth gauge
batchmaker_device_ready_depth{device="0"} 6.5
batchmaker_device_ready_depth{device="1"} 2
# HELP batchmaker_inflight_requests Admitted requests not yet resolved.
# TYPE batchmaker_inflight_requests gauge
batchmaker_inflight_requests 4
# HELP batchmaker_journal_batch_records Records committed per group-commit batch.
# TYPE batchmaker_journal_batch_records histogram
batchmaker_journal_batch_records_bucket{le="1"} 1
batchmaker_journal_batch_records_bucket{le="2"} 1
batchmaker_journal_batch_records_bucket{le="4"} 2
batchmaker_journal_batch_records_bucket{le="8"} 3
batchmaker_journal_batch_records_bucket{le="16"} 3
batchmaker_journal_batch_records_bucket{le="32"} 3
batchmaker_journal_batch_records_bucket{le="64"} 4
batchmaker_journal_batch_records_bucket{le="128"} 4
batchmaker_journal_batch_records_bucket{le="+Inf"} 5
batchmaker_journal_batch_records_sum 276
batchmaker_journal_batch_records_count 5
# HELP batchmaker_journal_bytes_written_total Journal bytes written, framing included.
# TYPE batchmaker_journal_bytes_written_total counter
batchmaker_journal_bytes_written_total 2048
# HELP batchmaker_journal_commit_seconds Append to durable-commit latency (group-commit wait included).
# TYPE batchmaker_journal_commit_seconds summary
batchmaker_journal_commit_seconds{quantile="0.5"} 0.001
batchmaker_journal_commit_seconds{quantile="0.9"} 0.002
batchmaker_journal_commit_seconds{quantile="0.99"} 0.002
batchmaker_journal_commit_seconds_sum 0.005
batchmaker_journal_commit_seconds_count 4
# HELP batchmaker_journal_errors_total Journal write/fsync failures (nonzero means lossy mode).
# TYPE batchmaker_journal_errors_total counter
batchmaker_journal_errors_total 1
# HELP batchmaker_journal_fsyncs_total Journal fsync calls.
# TYPE batchmaker_journal_fsyncs_total counter
batchmaker_journal_fsyncs_total 4
# HELP batchmaker_journal_records_total Durably committed journal records by kind.
# TYPE batchmaker_journal_records_total counter
batchmaker_journal_records_total{kind="admit"} 10
batchmaker_journal_records_total{kind="cancel"} 1
batchmaker_journal_records_total{kind="terminal"} 9
# HELP batchmaker_journal_recovered_requests_total Journaled requests re-admitted by recovery replay.
# TYPE batchmaker_journal_recovered_requests_total counter
batchmaker_journal_recovered_requests_total 5
# HELP batchmaker_journal_replayed_records_total Intact journal records scanned during crash recovery.
# TYPE batchmaker_journal_replayed_records_total counter
batchmaker_journal_replayed_records_total 20
# HELP batchmaker_padding_waste_ratio 1 - used/capacity batch slots: fraction of batch capacity wasted.
# TYPE batchmaker_padding_waste_ratio gauge
batchmaker_padding_waste_ratio 0.25
# HELP batchmaker_queued_cells Cells admitted but not yet executed (admission backlog).
# TYPE batchmaker_queued_cells gauge
batchmaker_queued_cells 32
# HELP batchmaker_ready_queue_depth Scheduler ready-queue depth (cells ready to batch).
# TYPE batchmaker_ready_queue_depth gauge
batchmaker_ready_queue_depth{cell_type="decoder"} 3
batchmaker_ready_queue_depth{cell_type="lstm"} 12
# HELP batchmaker_request_computation_seconds First cell execution to completion (paper's computation latency).
# TYPE batchmaker_request_computation_seconds summary
batchmaker_request_computation_seconds{quantile="0.5"} 0.02
batchmaker_request_computation_seconds{quantile="0.9"} 0.04
batchmaker_request_computation_seconds{quantile="0.99"} 0.04
batchmaker_request_computation_seconds_sum 0.1
batchmaker_request_computation_seconds_count 4
# HELP batchmaker_request_queuing_seconds Admit to first cell execution (paper's queuing latency).
# TYPE batchmaker_request_queuing_seconds summary
batchmaker_request_queuing_seconds{quantile="0.5"} 0.002
batchmaker_request_queuing_seconds{quantile="0.9"} 0.004
batchmaker_request_queuing_seconds{quantile="0.99"} 0.004
batchmaker_request_queuing_seconds_sum 0.01
batchmaker_request_queuing_seconds_count 4
# HELP batchmaker_requests_total Requests by terminal outcome (admitted counts entries).
# TYPE batchmaker_requests_total counter
batchmaker_requests_total{outcome="admitted"} 10
batchmaker_requests_total{outcome="cancelled"} 1
batchmaker_requests_total{outcome="completed"} 7
batchmaker_requests_total{outcome="expired"} 1
batchmaker_requests_total{outcome="failed"} 1
batchmaker_requests_total{outcome="rejected"} 2
# HELP batchmaker_span_records_dropped Span records overwritten before retention.
# TYPE batchmaker_span_records_dropped gauge
batchmaker_span_records_dropped{ring="rp"} 2
# HELP batchmaker_span_records_written Span records written to the ring.
# TYPE batchmaker_span_records_written gauge
batchmaker_span_records_written{ring="rp"} 10
# HELP batchmaker_task_retries_total Transient cell-task retries.
# TYPE batchmaker_task_retries_total counter
batchmaker_task_retries_total 3
# HELP batchmaker_tasks_executed_total Executed batched tasks.
# TYPE batchmaker_tasks_executed_total counter
batchmaker_tasks_executed_total{cell_type="decoder"} 2
batchmaker_tasks_executed_total{cell_type="lstm"} 5
# HELP batchmaker_trace_events_dropped_total Trace events overwritten by the bounded trace ring.
# TYPE batchmaker_trace_events_dropped_total gauge
batchmaker_trace_events_dropped_total 9
# HELP batchmaker_worker_queue_depth Tasks queued at the worker (scheduler's view).
# TYPE batchmaker_worker_queue_depth gauge
batchmaker_worker_queue_depth{worker="0"} 2
`
