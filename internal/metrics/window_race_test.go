package metrics

import (
	"sync"
	"testing"
	"time"
)

// TestWindowConcurrentAddQuery is the regression test for the PR-5 bugfix:
// the live server's metrics registry answers quantile scrapes while the
// request processor keeps feeding the window. Before Window carried its own
// lock this was a data race (Percentile copied buf while Add rewrote it)
// that -race flags and that could return garbage ranks. The test hammers
// Add against Percentile/Sum/Count from several goroutines; correctness of
// the returned quantile is also sanity-bounded since all samples share one
// known range.
func TestWindowConcurrentAddQuery(t *testing.T) {
	w := NewWindow(256)
	const writers, perWriter = 4, 5000
	lo, hi := time.Millisecond, 100*time.Millisecond

	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				d := lo + time.Duration(uint64(seed*perWriter+i)%100)*time.Millisecond
				w.Add(d)
			}
		}(g)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()

	for {
		select {
		case <-done:
			if got := w.Count(); got != writers*perWriter {
				t.Fatalf("count: got %d want %d", got, writers*perWriter)
			}
			if w.Sum() <= 0 {
				t.Fatalf("sum: got %v", w.Sum())
			}
			return
		default:
		}
		for _, p := range []float64{50, 90, 99} {
			if v := w.Percentile(p); v != 0 && (v < lo || v > hi) {
				t.Fatalf("p%v = %v outside sample range [%v, %v]", p, v, lo, hi)
			}
		}
		w.Sum()
		w.Count()
	}
}

func TestWindowSum(t *testing.T) {
	w := NewWindow(2)
	if w.Sum() != 0 {
		t.Fatal("empty window sum should be 0")
	}
	w.Add(time.Second)
	w.Add(2 * time.Second)
	w.Add(3 * time.Second) // evicts the first sample from the window…
	if got := w.Sum(); got != 6*time.Second {
		t.Fatalf("…but Sum is all-time: got %v want 6s", got)
	}
	if got := w.P99(); got != 3*time.Second {
		t.Fatalf("p99 over retained window: got %v", got)
	}
}
