// Package metrics provides the latency/throughput instrumentation used by
// the experiment harness: percentile recorders, CDFs, and the per-request
// queuing/computation breakdown of the paper's §7.3 analysis.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Recorder accumulates duration samples and answers percentile queries.
// The zero value is ready to use.
//
// Ownership: a Recorder is NOT safe for concurrent use — Add mutates the
// sample slice and even read-only-looking queries (Percentile, Max, CDF)
// sort it in place. It is owned by a single goroutine at a time: the sim
// harness and bench drivers fill recorders while running and only query
// them after the run joins. Anything that needs quantiles concurrently
// with ingestion (the live server's metrics registry) must use Window,
// which carries its own lock, instead.
type Recorder struct {
	samples []time.Duration
	sorted  bool
}

// Add appends one sample.
func (r *Recorder) Add(d time.Duration) {
	r.samples = append(r.samples, d)
	r.sorted = false
}

// Count returns the number of samples.
func (r *Recorder) Count() int { return len(r.samples) }

// Mean returns the arithmetic mean, or 0 with no samples.
func (r *Recorder) Mean() time.Duration {
	if len(r.samples) == 0 {
		return 0
	}
	var sum float64
	for _, d := range r.samples {
		sum += float64(d)
	}
	return time.Duration(sum / float64(len(r.samples)))
}

// Percentile returns the p-th percentile (0 < p <= 100) using the
// nearest-rank method, or 0 with no samples.
func (r *Recorder) Percentile(p float64) time.Duration {
	if len(r.samples) == 0 {
		return 0
	}
	if p <= 0 || p > 100 {
		panic(fmt.Sprintf("metrics: percentile %v out of (0,100]", p))
	}
	r.sort()
	rank := int(math.Ceil(p / 100 * float64(len(r.samples))))
	if rank < 1 {
		rank = 1
	}
	return r.samples[rank-1]
}

// P50, P90 and P99 are the percentiles the paper reports.
func (r *Recorder) P50() time.Duration { return r.Percentile(50) }

// P90 returns the 90th percentile.
func (r *Recorder) P90() time.Duration { return r.Percentile(90) }

// P99 returns the 99th percentile.
func (r *Recorder) P99() time.Duration { return r.Percentile(99) }

// Max returns the largest sample.
func (r *Recorder) Max() time.Duration {
	if len(r.samples) == 0 {
		return 0
	}
	r.sort()
	return r.samples[len(r.samples)-1]
}

// Min returns the smallest sample.
func (r *Recorder) Min() time.Duration {
	if len(r.samples) == 0 {
		return 0
	}
	r.sort()
	return r.samples[0]
}

// CDF returns up to points (time, cumulative fraction) pairs evenly spread
// over the sorted samples, suitable for plotting the paper's Figure 9/10
// style curves.
func (r *Recorder) CDF(points int) []CDFPoint {
	if len(r.samples) == 0 || points <= 0 {
		return nil
	}
	r.sort()
	if points > len(r.samples) {
		points = len(r.samples)
	}
	out := make([]CDFPoint, 0, points)
	for i := 1; i <= points; i++ {
		idx := i*len(r.samples)/points - 1
		out = append(out, CDFPoint{
			Value:    r.samples[idx],
			Fraction: float64(idx+1) / float64(len(r.samples)),
		})
	}
	return out
}

func (r *Recorder) sort() {
	if !r.sorted {
		sort.Slice(r.samples, func(i, j int) bool { return r.samples[i] < r.samples[j] })
		r.sorted = true
	}
}

// CDFPoint is one point of an empirical CDF.
type CDFPoint struct {
	Value    time.Duration
	Fraction float64
}

// RequestStats is the per-request breakdown of §7.3: queuing time (arrival
// to first execution) and computation time (first execution to result).
type RequestStats struct {
	Arrival    time.Duration // virtual arrival time
	FirstExec  time.Duration // virtual time the first cell started executing
	Completion time.Duration // virtual time the last cell finished
}

// Queuing returns the request's queuing delay.
func (s RequestStats) Queuing() time.Duration { return s.FirstExec - s.Arrival }

// Computation returns the span from first execution to the result return.
func (s RequestStats) Computation() time.Duration { return s.Completion - s.FirstExec }

// Latency returns total request latency.
func (s RequestStats) Latency() time.Duration { return s.Completion - s.Arrival }

// RunResult aggregates one serving experiment run (one load point of a
// throughput/latency plot).
type RunResult struct {
	System     string
	OfferedQPS float64 // open-loop arrival rate
	Duration   time.Duration
	Completed  int

	Latency     Recorder
	Queuing     Recorder
	Computation Recorder

	// Extra carries system-specific counters (e.g. "tasks", "migrations"
	// for the BatchMaker simulation's locality accounting).
	Extra map[string]float64
}

// AddExtra accumulates a named counter.
func (r *RunResult) AddExtra(name string, v float64) {
	if r.Extra == nil {
		r.Extra = make(map[string]float64)
	}
	r.Extra[name] += v
}

// Throughput returns completed requests per second of virtual time.
func (r *RunResult) Throughput() float64 {
	if r.Duration <= 0 {
		return 0
	}
	return float64(r.Completed) / r.Duration.Seconds()
}

// Row formats the run as the harness's standard table row.
func (r *RunResult) Row() string {
	return fmt.Sprintf("%-22s offered=%8.0f req/s  tput=%8.0f req/s  p50=%8.2fms  p90=%8.2fms  p99=%8.2fms",
		r.System, r.OfferedQPS, r.Throughput(),
		ms(r.Latency.P50()), ms(r.Latency.P90()), ms(r.Latency.P99()))
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// Ms exposes the millisecond conversion for harness printing.
func Ms(d time.Duration) float64 { return ms(d) }
