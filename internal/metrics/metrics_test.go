package metrics

import (
	"testing"
	"testing/quick"
	"time"
)

func TestRecorderPercentiles(t *testing.T) {
	var r Recorder
	for i := 1; i <= 100; i++ {
		r.Add(time.Duration(i) * time.Millisecond)
	}
	if r.Count() != 100 {
		t.Fatalf("count = %d", r.Count())
	}
	if got := r.P50(); got != 50*time.Millisecond {
		t.Fatalf("p50 = %v", got)
	}
	if got := r.P90(); got != 90*time.Millisecond {
		t.Fatalf("p90 = %v", got)
	}
	if got := r.P99(); got != 99*time.Millisecond {
		t.Fatalf("p99 = %v", got)
	}
	if got := r.Min(); got != 1*time.Millisecond {
		t.Fatalf("min = %v", got)
	}
	if got := r.Max(); got != 100*time.Millisecond {
		t.Fatalf("max = %v", got)
	}
	if got := r.Mean(); got != 50500*time.Microsecond {
		t.Fatalf("mean = %v", got)
	}
}

func TestRecorderEmpty(t *testing.T) {
	var r Recorder
	if r.P50() != 0 || r.Mean() != 0 || r.Max() != 0 || r.Min() != 0 {
		t.Fatal("empty recorder must return zeros")
	}
	if r.CDF(10) != nil {
		t.Fatal("empty CDF must be nil")
	}
}

func TestRecorderAddAfterQueryResorts(t *testing.T) {
	var r Recorder
	r.Add(5 * time.Millisecond)
	_ = r.P50()
	r.Add(1 * time.Millisecond)
	if got := r.Min(); got != 1*time.Millisecond {
		t.Fatalf("min after re-add = %v", got)
	}
}

func TestPercentilePanics(t *testing.T) {
	var r Recorder
	r.Add(time.Millisecond)
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	r.Percentile(0)
}

func TestCDFMonotone(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		var r Recorder
		for _, v := range raw {
			r.Add(time.Duration(v) * time.Microsecond)
		}
		pts := r.CDF(8)
		for i := 1; i < len(pts); i++ {
			if pts[i].Value < pts[i-1].Value || pts[i].Fraction < pts[i-1].Fraction {
				return false
			}
		}
		return len(pts) > 0 && pts[len(pts)-1].Fraction == 1.0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRequestStatsBreakdown(t *testing.T) {
	s := RequestStats{
		Arrival:    10 * time.Millisecond,
		FirstExec:  14 * time.Millisecond,
		Completion: 30 * time.Millisecond,
	}
	if s.Queuing() != 4*time.Millisecond {
		t.Fatalf("queuing = %v", s.Queuing())
	}
	if s.Computation() != 16*time.Millisecond {
		t.Fatalf("computation = %v", s.Computation())
	}
	if s.Latency() != 20*time.Millisecond {
		t.Fatalf("latency = %v", s.Latency())
	}
}

func TestRunResultThroughputAndRow(t *testing.T) {
	r := RunResult{System: "batchmaker", OfferedQPS: 1000, Duration: 2 * time.Second, Completed: 1500}
	if got := r.Throughput(); got != 750 {
		t.Fatalf("throughput = %v", got)
	}
	r.Latency.Add(10 * time.Millisecond)
	if row := r.Row(); row == "" {
		t.Fatal("empty row")
	}
	zero := RunResult{}
	if zero.Throughput() != 0 {
		t.Fatal("zero-duration throughput must be 0")
	}
}

func TestMsHelper(t *testing.T) {
	if Ms(1500*time.Microsecond) != 1.5 {
		t.Fatalf("Ms = %v", Ms(1500*time.Microsecond))
	}
}
