package metrics

import (
	"testing"
	"time"
)

func TestWindowEmptyAndBasics(t *testing.T) {
	w := NewWindow(8)
	if w.P50() != 0 || w.P99() != 0 || w.Count() != 0 {
		t.Fatal("empty window must answer zeros")
	}
	for i := 1; i <= 4; i++ {
		w.Add(time.Duration(i) * time.Millisecond)
	}
	if got := w.P50(); got != 2*time.Millisecond {
		t.Fatalf("P50 = %v, want 2ms", got)
	}
	if got := w.P99(); got != 4*time.Millisecond {
		t.Fatalf("P99 = %v, want 4ms", got)
	}
	if w.Count() != 4 {
		t.Fatalf("Count = %d", w.Count())
	}
}

func TestWindowEvictsOldest(t *testing.T) {
	w := NewWindow(4)
	// 100ms..103ms fill the ring, then 1ms..4ms evict them all.
	for i := 0; i < 4; i++ {
		w.Add(time.Duration(100+i) * time.Millisecond)
	}
	for i := 1; i <= 4; i++ {
		w.Add(time.Duration(i) * time.Millisecond)
	}
	if got := w.Percentile(100); got != 4*time.Millisecond {
		t.Fatalf("max over window = %v, want 4ms (old samples not evicted)", got)
	}
	if w.Count() != 8 {
		t.Fatalf("Count = %d, want total observed 8", w.Count())
	}
}

func TestWindowMatchesRecorderOnSmallInput(t *testing.T) {
	// With fewer samples than capacity, Window and Recorder agree exactly.
	w := NewWindow(64)
	var r Recorder
	for _, d := range []time.Duration{7, 3, 9, 1, 5, 2, 8} {
		w.Add(d)
		r.Add(d)
	}
	for _, p := range []float64{10, 50, 90, 99, 100} {
		if w.Percentile(p) != r.Percentile(p) {
			t.Fatalf("P%v: window %v != recorder %v", p, w.Percentile(p), r.Percentile(p))
		}
	}
}
