package metrics

import (
	"testing"
	"time"
)

func TestWindowSingleSample(t *testing.T) {
	w := NewWindow(8)
	w.Add(42 * time.Millisecond)
	// Every percentile of a one-sample window is that sample, including
	// the tiny-p path where nearest-rank rounds down to rank 0 and must be
	// clamped to 1.
	for _, p := range []float64{0.001, 1, 50, 99, 100} {
		if got := w.Percentile(p); got != 42*time.Millisecond {
			t.Fatalf("P%v = %v, want 42ms", p, got)
		}
	}
	if w.Count() != 1 {
		t.Fatalf("Count = %d, want 1", w.Count())
	}
}

func TestWindowExactCapacityWraparound(t *testing.T) {
	// Fill to exactly capacity: the ring's write cursor is back at slot 0,
	// and percentiles must still see all four retained samples.
	w := NewWindow(4)
	for i := 1; i <= 4; i++ {
		w.Add(time.Duration(i) * time.Millisecond)
	}
	if got := w.Percentile(100); got != 4*time.Millisecond {
		t.Fatalf("max = %v, want 4ms", got)
	}
	if got := w.Percentile(25); got != 1*time.Millisecond {
		t.Fatalf("P25 = %v, want 1ms", got)
	}
	// One more full lap: exactly capacity evictions, cursor again at 0.
	for i := 5; i <= 8; i++ {
		w.Add(time.Duration(i) * time.Millisecond)
	}
	if got := w.Percentile(25); got != 5*time.Millisecond {
		t.Fatalf("P25 after wrap = %v, want 5ms (oldest lap not evicted)", got)
	}
	if got := w.Percentile(100); got != 8*time.Millisecond {
		t.Fatalf("max after wrap = %v, want 8ms", got)
	}
	if w.Count() != 8 {
		t.Fatalf("Count = %d, want total observed 8", w.Count())
	}
}

func TestWindowPartialWraparound(t *testing.T) {
	// 5 samples into capacity 3: retention is the last 3, mid-buffer cursor.
	w := NewWindow(3)
	for i := 1; i <= 5; i++ {
		w.Add(time.Duration(i) * time.Millisecond)
	}
	if got := w.Percentile(1); got != 3*time.Millisecond {
		t.Fatalf("min = %v, want 3ms", got)
	}
	if got := w.P50(); got != 4*time.Millisecond {
		t.Fatalf("P50 = %v, want 4ms", got)
	}
}

func TestWindowPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: want panic", name)
			}
		}()
		f()
	}
	mustPanic("zero capacity", func() { NewWindow(0) })
	mustPanic("negative capacity", func() { NewWindow(-1) })
	w := NewWindow(2)
	w.Add(time.Millisecond)
	mustPanic("p=0", func() { w.Percentile(0) })
	mustPanic("p>100", func() { w.Percentile(100.5) })
}
