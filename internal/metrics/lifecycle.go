package metrics

import "fmt"

// Outcomes counts request-lifecycle events for a serving run: how many
// requests entered the system and how each one left it. The live server
// embeds it in its Stats snapshot; load-generation harnesses can Merge
// per-client copies. The terminal states are disjoint — a request resolves
// exactly once as completed, failed, expired, or cancelled — while Rejected
// counts requests shed at admission (never admitted at all).
type Outcomes struct {
	// Admitted counts requests accepted into the scheduler.
	Admitted int
	// Completed counts requests that returned full results.
	Completed int
	// Failed counts requests terminated by an execution error (including
	// recovered cell panics and server shutdown).
	Failed int
	// Rejected counts requests shed by admission control or drain.
	Rejected int
	// Expired counts requests terminated because their deadline passed.
	Expired int
	// Cancelled counts requests terminated by caller cancellation.
	Cancelled int
	// Retries counts transient task errors that were retried (attempt
	// count, not request count).
	Retries int
	// RecoveredPanics counts cell panics converted into per-request
	// failures instead of worker deaths.
	RecoveredPanics int
}

// Resolved returns how many admitted requests reached a terminal state.
func (o Outcomes) Resolved() int {
	return o.Completed + o.Failed + o.Expired + o.Cancelled
}

// Pending returns admitted-but-unresolved requests (live in the server).
func (o Outcomes) Pending() int { return o.Admitted - o.Resolved() }

// Merge accumulates another counter set into o.
func (o *Outcomes) Merge(other Outcomes) {
	o.Admitted += other.Admitted
	o.Completed += other.Completed
	o.Failed += other.Failed
	o.Rejected += other.Rejected
	o.Expired += other.Expired
	o.Cancelled += other.Cancelled
	o.Retries += other.Retries
	o.RecoveredPanics += other.RecoveredPanics
}

// String renders the counters as a compact report line.
func (o Outcomes) String() string {
	return fmt.Sprintf(
		"admitted=%d completed=%d failed=%d rejected=%d expired=%d cancelled=%d retries=%d panics=%d",
		o.Admitted, o.Completed, o.Failed, o.Rejected, o.Expired, o.Cancelled,
		o.Retries, o.RecoveredPanics)
}
