package metrics

import (
	"strings"
	"testing"
)

func TestOutcomesResolvedAndPending(t *testing.T) {
	o := Outcomes{Admitted: 10, Completed: 5, Failed: 2, Expired: 1, Cancelled: 1, Rejected: 3}
	if got := o.Resolved(); got != 9 {
		t.Fatalf("Resolved = %d, want 9", got)
	}
	if got := o.Pending(); got != 1 {
		t.Fatalf("Pending = %d, want 1", got)
	}
}

func TestOutcomesMerge(t *testing.T) {
	a := Outcomes{Admitted: 2, Completed: 1, Retries: 3}
	b := Outcomes{Admitted: 4, Failed: 1, RecoveredPanics: 2, Rejected: 1}
	a.Merge(b)
	want := Outcomes{Admitted: 6, Completed: 1, Failed: 1, Rejected: 1, Retries: 3, RecoveredPanics: 2}
	if a != want {
		t.Fatalf("Merge = %+v, want %+v", a, want)
	}
}

func TestOutcomesString(t *testing.T) {
	s := Outcomes{Admitted: 7, Expired: 2}.String()
	for _, part := range []string{"admitted=7", "expired=2", "cancelled=0", "panics=0"} {
		if !strings.Contains(s, part) {
			t.Fatalf("String() = %q missing %q", s, part)
		}
	}
}
