package metrics

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"
)

// Window is a bounded ring of duration samples for always-on observability:
// unlike Recorder it never grows past its capacity, so a long-running server
// can feed it on every scheduler dispatch without leaking. Percentiles are
// answered over the retained window (the most recent samples); Count reports
// the total ever observed. Unlike Recorder (which is single-goroutine by
// contract), Window carries its own lock: Add and the query methods are safe
// to call concurrently — the metrics registry reads quantiles from scrape
// handlers while workers keep observing. The zero value is unusable — use
// NewWindow.
type Window struct {
	mu    sync.Mutex
	buf   []time.Duration
	next  int
	n     int           // retained samples, <= len(buf)
	total int           // samples ever observed
	sum   time.Duration // sum of samples ever observed
}

// NewWindow returns a ring retaining the most recent capacity samples.
func NewWindow(capacity int) *Window {
	if capacity <= 0 {
		panic(fmt.Sprintf("metrics: NewWindow capacity %d out of range", capacity))
	}
	return &Window{buf: make([]time.Duration, capacity)}
}

// Add records one sample, evicting the oldest when the window is full.
func (w *Window) Add(d time.Duration) {
	w.mu.Lock()
	w.buf[w.next] = d
	w.next = (w.next + 1) % len(w.buf)
	if w.n < len(w.buf) {
		w.n++
	}
	w.total++
	w.sum += d
	w.mu.Unlock()
}

// Count returns the number of samples ever observed (not just retained).
func (w *Window) Count() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.total
}

// Sum returns the sum of all samples ever observed (not just retained) —
// the _sum of a Prometheus summary.
func (w *Window) Sum() time.Duration {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.sum
}

// Percentile returns the p-th percentile (0 < p <= 100, nearest-rank) over
// the retained window, or 0 with no samples.
func (w *Window) Percentile(p float64) time.Duration {
	if p <= 0 || p > 100 {
		panic(fmt.Sprintf("metrics: percentile %v out of (0,100]", p))
	}
	w.mu.Lock()
	if w.n == 0 {
		w.mu.Unlock()
		return 0
	}
	sorted := make([]time.Duration, w.n)
	copy(sorted, w.buf[:w.n])
	n := w.n
	w.mu.Unlock()
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	rank := int(math.Ceil(p / 100 * float64(n)))
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	return sorted[rank-1]
}

// P50 returns the median of the retained window.
func (w *Window) P50() time.Duration { return w.Percentile(50) }

// P90 returns the 90th percentile of the retained window.
func (w *Window) P90() time.Duration { return w.Percentile(90) }

// P99 returns the 99th percentile of the retained window.
func (w *Window) P99() time.Duration { return w.Percentile(99) }
