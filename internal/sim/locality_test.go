package sim

import (
	"testing"
	"testing/quick"
	"time"

	"batchmaker/internal/dataset"
)

func TestPinningKeepsMigrationsRare(t *testing.T) {
	// §4.3's locality design: subgraph→worker pinning should keep the vast
	// majority of a request's consecutive cells on one GPU, so only a
	// small fraction of tasks pay a cross-device copy.
	model := NewSeq2SeqModel(512, 256, 1)
	wl := &Seq2SeqWorkload{Pairs: dataset.NewPairSampler(77)}
	res, err := RunBatchMaker(defaultBMConfig(model, 4), wl, shortRun(8_000, 21))
	if err != nil {
		t.Fatal(err)
	}
	tasks := res.Extra["tasks"]
	migr := res.Extra["migration_tasks"]
	if tasks == 0 {
		t.Fatal("no tasks recorded")
	}
	frac := migr / tasks
	if frac > 0.35 {
		t.Fatalf("migration tasks = %.0f of %.0f (%.0f%%); pinning should keep this low",
			migr, tasks, 100*frac)
	}
	// Requests spanned two phases (encoder + decoder subgraphs), so some
	// migration is expected; zero would suggest the counter is dead...
	// unless the workload drained worker-serially. Check the counters are
	// wired by asserting batched cells >= tasks.
	if res.Extra["batched_cells"] < tasks {
		t.Fatalf("counters inconsistent: %+v", res.Extra)
	}
}

func TestBatchingActuallyHappensUnderLoad(t *testing.T) {
	// At saturation the mean batch size must approach the configured max.
	model := NewLSTMModel(512, 1)
	wl := &FixedWorkload{Shape: Shape{Kind: KindChain, Len: 24}}
	res, err := RunBatchMaker(defaultBMConfig(model, 1), wl, shortRun(35_000, 22))
	if err != nil {
		t.Fatal(err)
	}
	mean := res.Extra["batched_cells"] / res.Extra["tasks"]
	if mean < 256 {
		t.Fatalf("mean batch %.0f at saturation; want near 512", mean)
	}
}

// TestPropBatchMakerNeverLosesRequests fuzzes workload mixes and loads:
// every admitted request completes (RunBatchMaker errors otherwise) and
// latencies respect the physical floor of one cell time.
func TestPropBatchMakerNeverLosesRequests(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation fuzz")
	}
	f := func(seed uint64, kindSel, rateSel uint8) bool {
		rate := []float64{200, 1_000, 4_000}[int(rateSel)%3]
		run := RunConfig{
			RatePerSec: rate,
			Duration:   80 * time.Millisecond,
			Warmup:     40 * time.Millisecond,
			Seed:       seed,
		}
		var (
			model *Model
			wl    Workload
		)
		switch kindSel % 3 {
		case 0:
			model = NewLSTMModel(64, 1)
			wl = &LSTMWorkload{Lengths: dataset.NewWMTLengths(seed)}
		case 1:
			model = NewSeq2SeqModel(128, 64, 1)
			wl = &Seq2SeqWorkload{Pairs: dataset.NewPairSampler(seed)}
		default:
			model = NewTreeModel(64, 1)
			wl = &TreeWorkload{Trees: dataset.NewTreeSampler(seed, 1000)}
		}
		res, err := RunBatchMaker(defaultBMConfig(model, 1+int(seed%3)), wl, run)
		if err != nil {
			return false
		}
		if res.Latency.Count() > 0 && res.Latency.Min() <= 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
