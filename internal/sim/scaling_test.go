package sim

import (
	"testing"
	"time"
)

// TestMultiGPUScalingCurve reproduces the paper's multi-GPU claim in virtual
// time: at a load that saturates one device, adding devices raises
// saturation throughput — 2 GPUs ≥ 1.5× 1 GPU, and the curve never bends
// downward through 4.
func TestMultiGPUScalingCurve(t *testing.T) {
	model := NewLSTMModel(256, 1)
	cfg := defaultBMConfig(model, 1)
	run := RunConfig{
		RatePerSec: 150_000,
		Duration:   120 * time.Millisecond,
		Warmup:     60 * time.Millisecond,
		Seed:       11,
	}
	pts, err := RunScalingCurve(cfg,
		func() Workload { return &FixedWorkload{Shape: Shape{Kind: KindChain, Len: 16}} },
		run, []int{1, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("points = %d, want 3", len(pts))
	}
	for _, p := range pts {
		if p.Throughput <= 0 {
			t.Fatalf("%d GPUs measured zero throughput", p.NumGPUs)
		}
		t.Logf("%d GPUs: %.0f req/s (tasks=%.0f migration_tasks=%.0f)",
			p.NumGPUs, p.Throughput, p.Result.Extra["tasks"], p.Result.Extra["migration_tasks"])
	}
	t1, t2, t4 := pts[0].Throughput, pts[1].Throughput, pts[2].Throughput
	// The single-GPU point must actually be saturated, otherwise the curve
	// measures the arrival process instead of capacity.
	if t1 >= 0.9*run.RatePerSec {
		t.Fatalf("1 GPU completed %.0f/s of %.0f/s offered; load does not saturate", t1, run.RatePerSec)
	}
	if t2 < 1.5*t1 {
		t.Fatalf("2-GPU speedup %.2fx (%.0f vs %.0f req/s), want >= 1.5x", t2/t1, t2, t1)
	}
	if t4 < t2 {
		t.Fatalf("scaling curve bends down: 4 GPUs %.0f < 2 GPUs %.0f req/s", t4, t2)
	}
}

// TestScalingCurveRejectsBadPoints covers the input validation.
func TestScalingCurveRejectsBadPoints(t *testing.T) {
	cfg := defaultBMConfig(NewLSTMModel(64, 1), 1)
	wl := func() Workload { return &FixedWorkload{Shape: Shape{Kind: KindChain, Len: 4}} }
	if _, err := RunScalingCurve(cfg, wl, shortRun(100, 1), []int{1, 0}); err == nil {
		t.Fatal("want error for zero-GPU point")
	}
}
