package sim

import (
	"time"

	"batchmaker/internal/dataset"
	"batchmaker/internal/metrics"
)

// Workload generates request shapes for a run.
type Workload interface {
	Next() Shape
}

// LSTMWorkload samples chain lengths.
type LSTMWorkload struct{ Lengths dataset.LengthSampler }

// Next implements Workload.
func (w *LSTMWorkload) Next() Shape { return Shape{Kind: KindChain, Len: w.Lengths.Sample()} }

// Seq2SeqWorkload samples correlated (src, dst) pairs.
type Seq2SeqWorkload struct{ Pairs *dataset.PairSampler }

// Next implements Workload.
func (w *Seq2SeqWorkload) Next() Shape {
	src, dst := w.Pairs.Sample()
	return Shape{Kind: KindSeq2Seq, SrcLen: src, DstLen: dst}
}

// TreeWorkload samples random parse trees.
type TreeWorkload struct{ Trees *dataset.TreeSampler }

// Next implements Workload.
func (w *TreeWorkload) Next() Shape { return Shape{Kind: KindTree, Tree: w.Trees.Sample()} }

// FixedWorkload replays one shape forever (fixed-length and fixed-tree
// experiments).
type FixedWorkload struct{ Shape Shape }

// Next implements Workload.
func (w *FixedWorkload) Next() Shape { return w.Shape }

// RatePhase scales the base arrival rate over one span of virtual time, so
// a run can script a burst profile (Poisson→spike→quiet) instead of a flat
// rate. Phases are consulted in order; virtual time past the last phase
// reverts to scale 1.
type RatePhase struct {
	// Until is the virtual instant (from run start) this phase ends.
	Until time.Duration
	// RateScale multiplies RatePerSec while the phase is active. Zero or
	// negative means (effectively) no arrivals — a quiet phase.
	RateScale float64
}

// RunConfig drives one load point of a serving experiment.
type RunConfig struct {
	// RatePerSec is the open-loop Poisson arrival rate.
	RatePerSec float64
	// Duration is the measured virtual time span (after warmup).
	Duration time.Duration
	// Warmup requests arriving before this instant are executed but not
	// measured.
	Warmup time.Duration
	// Seed drives arrivals (workload samplers carry their own seeds).
	Seed uint64
	// MaxRequests caps total admissions as a safety valve (0 = unlimited).
	MaxRequests int
	// Phases, when non-empty, scripts a bursty arrival profile by scaling
	// RatePerSec over time (see RatePhase). The underlying Poisson stream
	// is one seeded source whose gaps are stretched or compressed, so the
	// profile is deterministic per seed.
	Phases []RatePhase
}

// rateScale returns the arrival-rate multiplier active at virtual time t.
func (c RunConfig) rateScale(t time.Duration) float64 {
	for _, p := range c.Phases {
		if t < p.Until {
			if p.RateScale <= 0 {
				return 0
			}
			return p.RateScale
		}
	}
	return 1
}

// phaseEnd returns when the phase active at t ends (the run's end when t is
// past the scripted profile).
func (c RunConfig) phaseEnd(t time.Duration) time.Duration {
	for _, p := range c.Phases {
		if t < p.Until {
			return p.Until
		}
	}
	return c.end()
}

// measuredWindow returns the virtual time at which admission stops.
func (c RunConfig) end() time.Duration { return c.Warmup + c.Duration }

// collector accumulates per-request stats into a RunResult. Latency
// percentiles cover requests that arrived inside the measured window;
// achieved throughput counts completions that fell inside the window (the
// standard open-loop convention, so an overloaded run reports its saturation
// throughput rather than the offered rate).
type collector struct {
	cfg        RunConfig
	res        *metrics.RunResult
	windowDone int
}

func newCollector(system string, cfg RunConfig) *collector {
	return &collector{
		cfg: cfg,
		res: &metrics.RunResult{
			System:     system,
			OfferedQPS: cfg.RatePerSec,
			Duration:   cfg.Duration,
		},
	}
}

func (c *collector) record(arrival, firstExec, completion time.Duration) {
	if completion >= c.cfg.Warmup && completion <= c.cfg.end() {
		c.windowDone++
	}
	if arrival < c.cfg.Warmup {
		return
	}
	st := metrics.RequestStats{Arrival: arrival, FirstExec: firstExec, Completion: completion}
	c.res.Latency.Add(st.Latency())
	c.res.Queuing.Add(st.Queuing())
	c.res.Computation.Add(st.Computation())
}

func (c *collector) result() *metrics.RunResult {
	c.res.Completed = c.windowDone
	return c.res
}
