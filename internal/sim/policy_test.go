package sim

import (
	"strings"
	"testing"
	"time"

	"batchmaker/internal/policy"
)

// policyBurstRun drives one virtual-time BatchMaker run under the scripted
// burst profile (Poisson → 8× spike → quiet) with the full policy stack on,
// returning the controller's decision trace and the run extras.
func policyBurstRun(t *testing.T, seed uint64) ([]string, map[string]float64) {
	t.Helper()
	// ComputeBudget 0.2 (5ms of the 25ms SLA): the fixed 24-step chains
	// spend ~6ms in computation under load, so the spike forces AIMD
	// shrink/grow traffic and the trace records a MaxBatch trajectory.
	ctl := policy.New(
		policy.Config{Mode: policy.ModeFull, SLA: 25 * time.Millisecond,
			ComputeBudget: 0.2, RecordTrace: true},
		[]policy.TypeBounds{{Key: TypeLSTM, Min: 1, Max: 64}}, nil)
	cfg := defaultBMConfig(NewLSTMModel(64, 1), 1)
	cfg.Policy = ctl
	cfg.Deadline = 25 * time.Millisecond
	wl := &FixedWorkload{Shape: Shape{Kind: KindChain, Len: 24}}
	run := RunConfig{
		RatePerSec: 2_000,
		Duration:   450 * time.Millisecond,
		Seed:       seed,
		Phases: []RatePhase{
			{Until: 150 * time.Millisecond, RateScale: 1}, // steady Poisson
			{Until: 300 * time.Millisecond, RateScale: 8}, // overload spike
			{Until: 450 * time.Millisecond, RateScale: 0}, // quiet: drain
		},
	}
	res, err := RunBatchMaker(cfg, wl, run)
	if err != nil {
		t.Fatal(err)
	}
	return ctl.TraceLines(), res.Extra
}

// TestPolicyBurstTraceDeterministic is the policy determinism harness: two
// same-seed virtual-time runs of the scripted burst must produce
// byte-identical decision traces (shed points, gate flips, MaxBatch
// trajectory) and identical shed/miss counts — the conformance idiom applied
// to the control loop.
func TestPolicyBurstTraceDeterministic(t *testing.T) {
	trace1, extra1 := policyBurstRun(t, 11)
	trace2, extra2 := policyBurstRun(t, 11)
	j1, j2 := strings.Join(trace1, "\n"), strings.Join(trace2, "\n")
	if j1 != j2 {
		t.Fatalf("same-seed runs diverged:\nrun1:\n%s\nrun2:\n%s", j1, j2)
	}
	for _, k := range []string{"policy_sheds", "deadline_misses"} {
		if extra1[k] != extra2[k] {
			t.Fatalf("extra %q diverged: %v vs %v", k, extra1[k], extra2[k])
		}
	}
	// The spike must actually exercise the controllers: the gate sheds and
	// the AIMD moves MaxBatch at least once.
	if extra1["policy_sheds"] == 0 {
		t.Fatalf("spike shed nothing; trace:\n%s", j1)
	}
	var sawBatch bool
	for _, l := range trace1 {
		if strings.HasPrefix(l, "batch ") {
			sawBatch = true
			break
		}
	}
	if !sawBatch {
		t.Fatalf("no MaxBatch trajectory in trace:\n%s", j1)
	}
	// A different seed must change the decision sequence (the trace is a
	// function of the arrival stream, not a constant).
	trace3, _ := policyBurstRun(t, 12)
	if j1 == strings.Join(trace3, "\n") {
		t.Fatal("different seeds produced identical traces")
	}
}

// TestPolicyBurstShedsReduceMisses compares the same burst with and without
// the policy stack: the policy arm must shed some arrivals and in exchange
// miss fewer deadlines among the requests it serves.
func TestPolicyBurstShedsReduceMisses(t *testing.T) {
	arm := func(on bool) map[string]float64 {
		cfg := defaultBMConfig(NewLSTMModel(64, 1), 1)
		cfg.Deadline = 25 * time.Millisecond
		if on {
			cfg.Policy = policy.New(
				policy.Config{Mode: policy.ModeFull, SLA: 25 * time.Millisecond},
				[]policy.TypeBounds{{Key: TypeLSTM, Min: 1, Max: 64}}, nil)
		}
		wl := &FixedWorkload{Shape: Shape{Kind: KindChain, Len: 24}}
		run := RunConfig{
			RatePerSec: 2_000,
			Duration:   450 * time.Millisecond,
			Seed:       21,
			Phases: []RatePhase{
				{Until: 150 * time.Millisecond, RateScale: 1},
				{Until: 300 * time.Millisecond, RateScale: 8},
				{Until: 450 * time.Millisecond, RateScale: 0},
			},
		}
		res, err := RunBatchMaker(cfg, wl, run)
		if err != nil {
			t.Fatal(err)
		}
		return res.Extra
	}
	static := arm(false)
	adaptive := arm(true)
	if adaptive["policy_sheds"] == 0 {
		t.Fatal("policy arm shed nothing under the spike")
	}
	if adaptive["deadline_misses"] >= static["deadline_misses"] {
		t.Fatalf("policy arm missed %v deadlines, static arm %v — shedding should protect admitted requests",
			adaptive["deadline_misses"], static["deadline_misses"])
	}
}
