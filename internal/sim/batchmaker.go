package sim

import (
	"fmt"
	"time"

	"batchmaker/internal/core"
	"batchmaker/internal/dataset"
	"batchmaker/internal/device"
	"batchmaker/internal/metrics"
	"batchmaker/internal/obsv"
	"batchmaker/internal/policy"
)

// BatchMakerConfig configures the cellular-batching serving simulation
// (§4: manager with request processor + scheduler, one worker per GPU).
type BatchMakerConfig struct {
	Model            *Model
	NumGPUs          int
	Overheads        device.Overheads
	MaxTasksToSubmit int
	// StateBytes is the per-request device state (h and c vectors) copied
	// when a request's execution migrates between GPUs. At hidden 1024 and
	// float32, h+c is 8 KiB.
	StateBytes int
	// WeightBytes is one cell type's parameter size, fetched over the
	// interconnect when a worker steals a task whose weights are pinned on
	// another device (§5). The default matches an LSTM at hidden 1024.
	WeightBytes int
	// Cluster supplies the device streams and the per-pair copy-cost
	// matrix. Nil builds a uniform NewCluster(NumGPUs); when set, its size
	// must equal NumGPUs.
	Cluster *device.Cluster
	// RebalanceSkew forwards to core.Config: a device's ready depth must
	// exceed skew × the lightest device's before a weight pin moves.
	RebalanceSkew float64
	// Metrics, when set, receives the same metric families the live server
	// publishes (outcome counters, batch occupancy, slot accounting, the
	// queuing/computation latency split, ready-queue depth per cell type,
	// per-device ready depth and copy counters), so a virtual-time run can
	// be scraped or summarized exactly like a real one. Nil disables the
	// hook.
	Metrics *obsv.ServingMetrics
	// Observer, when set, receives the same span-ring records the live
	// server writes (admit/terminal lifecycle, dispatch, task-exec,
	// first-exec, policy and rebalance events) at virtual-time
	// timestamps, so Observer.WriteTrace assembles a Perfetto trace of a
	// sim run exactly as it does for a live one — paper-style figures
	// straight from traces. The sim's event loop is one goroutine, so it
	// is the single writer of every ring it creates.
	Observer *obsv.Observer
	// Policy, when set, mirrors the live server's adaptive control layer in
	// virtual time: the Little's-law gate sheds arrivals (counted in the
	// result extras, never admitted) and AIMD MaxBatch moves are applied to
	// the scheduler directly. The controller is caller-owned so a test can
	// read its decision trace after the run; timestamps fed to it are
	// virtual nanoseconds, making every decision replayable.
	Policy *policy.Controller
	// Deadline, when positive, gives each request an SLA expiry of
	// arrival+Deadline. The sim never expires requests — the deadline
	// drives the scheduler's EDF ordering and the deadline-miss count in
	// the result extras.
	Deadline time.Duration
}

// DefaultStateBytes is h+c at hidden 1024, float32.
const DefaultStateBytes = 8192

// DefaultWeightBytes is the four gate matrices of an LSTM at hidden 1024,
// float32: 4·(1024+1024)·1024·4 bytes.
const DefaultWeightBytes = 32 << 20

type bmRequest struct {
	id        core.RequestID
	tracker   *core.Tracker
	cells     int
	arrival   time.Duration
	deadline  time.Duration // 0 = none
	firstExec time.Duration
	hasExec   bool
}

// batchMakerSim is one run of the BatchMaker simulation.
type batchMakerSim struct {
	cfg   BatchMakerConfig
	run   RunConfig
	wl    Workload
	eng   *Engine
	sched *core.Scheduler
	gpus  []*device.GPU
	// inflight tasks per worker; a worker asks for more work when it drains.
	inflight []int
	reqs     map[core.RequestID]*bmRequest
	nextID   core.RequestID
	col      *collector
	admitted int
	// queuedCells is the admitted not-yet-executed cell backlog — the
	// admission gate's Little's-law queue depth.
	queuedCells int
	sheds       int
	misses      int
	// obsTypes caches per-cell-type metric handles plus the type's batch
	// capacity (for slot accounting); nil when cfg.Metrics is nil.
	obsTypes map[string]*bmObsType
	// obsDevs caches per-device metric handles; nil when cfg.Metrics is nil.
	obsDevs []*obsv.DeviceMetrics
	// Span rings mirroring the live pipeline's writer layout; nil (no-op)
	// when cfg.Observer is nil.
	rpRing      *obsv.Ring
	schedRing   *obsv.Ring
	workerRings []*obsv.Ring
	typeIDs     map[string]uint16
}

// bmObsType is one cell type's cached metric handles for the sim hook.
type bmObsType struct {
	tm       *obsv.TypeMetrics
	maxBatch int64
}

// RunBatchMaker simulates BatchMaker serving the workload at one load point
// and returns the measured run result.
func RunBatchMaker(cfg BatchMakerConfig, wl Workload, run RunConfig) (*metrics.RunResult, error) {
	if cfg.NumGPUs <= 0 {
		return nil, fmt.Errorf("sim: NumGPUs must be positive")
	}
	if cfg.Model == nil {
		return nil, fmt.Errorf("sim: nil model")
	}
	if cfg.StateBytes == 0 {
		cfg.StateBytes = DefaultStateBytes
	}
	if cfg.WeightBytes == 0 {
		cfg.WeightBytes = DefaultWeightBytes
	}
	if cfg.Cluster == nil {
		cfg.Cluster = device.NewCluster(cfg.NumGPUs)
	} else if cfg.Cluster.N() != cfg.NumGPUs {
		return nil, fmt.Errorf("sim: cluster has %d devices, config says %d", cfg.Cluster.N(), cfg.NumGPUs)
	}
	// Weight the scheduler's pin assignment by each type's single-cell
	// kernel time so heavy types spread across devices first.
	types := cfg.Model.Types()
	for i := range types {
		if types[i].Weight == 0 {
			types[i].Weight = float64(cfg.Model.KernelTime(types[i].Key, 1))
		}
	}
	sched, err := core.NewScheduler(core.Config{
		Types:            types,
		MaxTasksToSubmit: cfg.MaxTasksToSubmit,
		Devices:          cfg.NumGPUs,
		RebalanceSkew:    cfg.RebalanceSkew,
	})
	if err != nil {
		return nil, err
	}
	s := &batchMakerSim{
		cfg:      cfg,
		run:      run,
		wl:       wl,
		eng:      NewEngine(),
		sched:    sched,
		gpus:     make([]*device.GPU, cfg.NumGPUs),
		inflight: make([]int, cfg.NumGPUs),
		reqs:     make(map[core.RequestID]*bmRequest),
		col:      newCollector(fmt.Sprintf("BatchMaker-%s", cfg.Model.Name), run),
	}
	for i := range s.gpus {
		s.gpus[i] = cfg.Cluster.Device(i)
		if err := sched.BindWorker(core.WorkerID(i), core.DeviceID(i)); err != nil {
			return nil, err
		}
	}
	if cfg.Metrics != nil {
		s.obsTypes = make(map[string]*bmObsType)
		for _, tc := range cfg.Model.Types() {
			s.obsTypes[tc.Key] = &bmObsType{tm: cfg.Metrics.Type(tc.Key), maxBatch: int64(tc.MaxBatch)}
		}
		s.obsDevs = make([]*obsv.DeviceMetrics, cfg.NumGPUs)
		for d := range s.obsDevs {
			s.obsDevs[d] = cfg.Metrics.Device(d)
		}
	}
	if o := cfg.Observer; o != nil {
		s.rpRing = o.NewRing("rp")
		s.schedRing = o.NewRing("sched")
		s.workerRings = make([]*obsv.Ring, cfg.NumGPUs)
		for w := range s.workerRings {
			s.workerRings[w] = o.NewRing(fmt.Sprintf("worker-%d", w))
		}
		s.typeIDs = make(map[string]uint16)
		for _, tc := range cfg.Model.Types() {
			s.typeIDs[tc.Key] = o.InternType(tc.Key)
			o.SetTypeDetail(tc.Key, obsv.TypeDetail{MaxBatch: tc.MaxBatch, Precision: "f32"})
		}
	}
	arrivals := dataset.NewPoisson(run.Seed, run.RatePerSec)
	s.scheduleArrival(arrivals, s.nextArrival(arrivals, 0))
	for s.eng.Step() {
	}
	// Drain check: every admitted request must have completed.
	if len(s.reqs) != 0 {
		return nil, fmt.Errorf("sim: %d requests never completed", len(s.reqs))
	}
	if cfg.Policy != nil {
		s.col.res.AddExtra("policy_sheds", float64(s.sheds))
	}
	if cfg.Deadline > 0 {
		s.col.res.AddExtra("deadline_misses", float64(s.misses))
	}
	return s.col.result(), nil
}

// nextArrival advances from virtual time t by the Poisson stream's next gap,
// compressed or stretched by the run's burst profile. A quiet phase
// (RateScale <= 0) fast-forwards to its end without consuming a gap.
func (s *batchMakerSim) nextArrival(p *dataset.Poisson, t time.Duration) time.Duration {
	for {
		if scale := s.run.rateScale(t); scale > 0 {
			return t + time.Duration(float64(p.NextGapNanos())/scale)
		}
		t = s.run.phaseEnd(t)
		if t > s.run.end() {
			return t
		}
	}
}

func (s *batchMakerSim) scheduleArrival(p *dataset.Poisson, at time.Duration) {
	if at > s.run.end() {
		return
	}
	if s.run.MaxRequests > 0 && s.admitted >= s.run.MaxRequests {
		return
	}
	s.eng.At(at, func() {
		s.admit()
		s.scheduleArrival(p, s.nextArrival(p, s.eng.Now()))
	})
}

func (s *batchMakerSim) admit() {
	// Sample the shape before the gate so the workload stream stays aligned
	// between policy-on and policy-off arms of the same seed.
	shape := s.wl.Next()
	if p := s.cfg.Policy; p != nil {
		if d := p.Admit(int64(s.eng.Now()), s.queuedCells); !d.Admit {
			s.sheds++
			if m := s.cfg.Metrics; m != nil {
				m.Rejected.Inc()
			}
			s.rpRing.Write(obsv.Record{Kind: obsv.KindPolicyShed, T0: int64(s.eng.Now())})
			s.rpRing.Write(obsv.Record{Kind: obsv.KindReject, T0: int64(s.eng.Now())})
			return
		}
	}
	g, err := s.cfg.Model.BuildGraph(shape)
	if err != nil {
		panic(fmt.Sprintf("sim: building request graph: %v", err))
	}
	s.nextID++
	id := s.nextID
	tr, err := core.NewTracker(id, g)
	if err != nil {
		panic(fmt.Sprintf("sim: tracker: %v", err))
	}
	req := &bmRequest{id: id, tracker: tr, cells: len(g.Nodes), arrival: s.eng.Now()}
	if s.cfg.Deadline > 0 {
		req.deadline = req.arrival + s.cfg.Deadline
	}
	s.reqs[id] = req
	s.admitted++
	s.queuedCells += req.cells
	if m := s.cfg.Metrics; m != nil {
		m.Admitted.Inc()
		m.Inflight.Set(int64(len(s.reqs)))
	}
	s.rpRing.Write(obsv.Record{Kind: obsv.KindAdmit, Req: int64(id), T0: int64(req.arrival)})
	for _, spec := range tr.InitialSubgraphs() {
		spec.Deadline = int64(req.deadline)
		if _, err := s.sched.AddSubgraph(spec); err != nil {
			panic(fmt.Sprintf("sim: add subgraph: %v", err))
		}
	}
	s.kickIdleWorkers()
}

// kickIdleWorkers offers work to every drained worker, after giving the
// scheduler a chance to move a weight pin if ready depth has skewed (§5).
func (s *batchMakerSim) kickIdleWorkers() {
	if moved := s.sched.MaybeRebalance(); moved > 0 {
		s.col.res.AddExtra("pin_moves", float64(moved))
		if m := s.cfg.Metrics; m != nil {
			m.PinMoves.Add(int64(moved))
		}
		s.schedRing.Write(obsv.Record{
			Kind: obsv.KindRebalance, Batch: uint16(moved), T0: int64(s.eng.Now()),
		})
	}
	for w := range s.gpus {
		if s.inflight[w] == 0 {
			s.scheduleWorker(core.WorkerID(w))
		}
	}
}

// scheduleWorker runs the cellular-batching scheduler for one worker and
// submits the returned tasks to its GPU stream back to back.
func (s *batchMakerSim) scheduleWorker(w core.WorkerID) {
	tasks := s.sched.Schedule(w)
	if len(tasks) == 0 {
		return
	}
	gpu := s.gpus[w]
	dev := int(s.sched.DeviceOf(w))
	for _, task := range tasks {
		dur := s.cfg.Overheads.PerTask(task.BatchSize()) + s.cfg.Model.KernelTime(task.TypeKey, task.BatchSize())
		s.col.res.AddExtra("tasks", 1)
		s.col.res.AddExtra("batched_cells", float64(task.BatchSize()))
		if ot := s.obsTypes[task.TypeKey]; ot != nil {
			m := s.cfg.Metrics
			batch := int64(task.BatchSize())
			ot.tm.Tasks.Inc()
			ot.tm.Cells.Add(batch)
			m.BatchOccupancy.Observe(batch)
			m.SlotsUsed.Add(batch)
			m.SlotsCap.Add(ot.maxBatch)
		}
		// Cross-device movement (§5): the scheduler marks requests whose
		// previous task ran on another device; their h/c state is copied
		// in. Copies to one destination overlap, so charge the slowest
		// source link once.
		if task.Migrations > 0 {
			var stateCopy time.Duration
			for _, src := range task.MigratedFrom {
				if d := s.cfg.Cluster.CopyTime(int(src), dev, s.cfg.StateBytes); d > stateCopy {
					stateCopy = d
				}
			}
			dur += stateCopy
			s.col.res.AddExtra("migrated_requests", float64(task.Migrations))
			s.col.res.AddExtra("migration_tasks", 1)
		}
		// Remote steal: the type's weights live on HomeDevice and must be
		// fetched before the kernel can run here.
		if task.Remote {
			dur += s.cfg.Cluster.CopyTime(int(task.HomeDevice), dev, s.cfg.WeightBytes)
			s.col.res.AddExtra("remote_tasks", 1)
		}
		if (task.Migrations > 0 || task.Remote) && s.obsDevs != nil {
			s.obsDevs[dev].Copies.Add(int64(task.Migrations))
			if task.Remote {
				s.obsDevs[dev].Copies.Inc()
			}
		}
		var flags uint8
		if task.Remote {
			flags |= obsv.FlagRemote
		}
		if task.Migrations > 0 {
			flags |= obsv.FlagMigrated
		}
		s.schedRing.Write(obsv.Record{
			Kind:   obsv.KindDispatch,
			Worker: uint8(w),
			Type:   s.typeIDs[task.TypeKey],
			Batch:  uint16(task.BatchSize()),
			Queue:  uint16(s.inflight[w]),
			Device: uint8(dev),
			Flags:  flags,
			T0:     int64(s.eng.Now()),
		})
		start, end := gpu.Submit(s.eng.Now(), dur)
		for _, ref := range task.Nodes {
			req := s.reqs[ref.Req]
			if !req.hasExec {
				req.hasExec = true
				req.firstExec = start
				if s.workerRings != nil {
					s.workerRings[w].Write(obsv.Record{
						Kind:   obsv.KindFirstExec,
						Worker: uint8(w),
						Batch:  uint16(task.BatchSize()),
						Device: uint8(dev),
						Req:    int64(ref.Req),
						T0:     int64(start),
					})
				}
			}
		}
		if s.workerRings != nil {
			s.workerRings[w].Write(obsv.Record{
				Kind:   obsv.KindTaskExec,
				Worker: uint8(w),
				Type:   s.typeIDs[task.TypeKey],
				Batch:  uint16(task.BatchSize()),
				Device: uint8(dev),
				Flags:  flags,
				T0:     int64(start),
				T1:     int64(end),
			})
		}
		s.inflight[w]++
		t := task
		s.eng.At(end+s.cfg.Overheads.CompletionPoll, func() { s.onTaskDone(w, t, end) })
	}
	s.mirrorReady()
}

// mirrorReady refreshes the per-type ready-queue depth gauges so a sim
// registry exposes the same scheduler view the live server does.
func (s *batchMakerSim) mirrorReady() {
	for key, ot := range s.obsTypes {
		ot.tm.Ready.Set(int64(s.sched.ReadyNodes(key)))
	}
	for d, dm := range s.obsDevs {
		dm.Ready.Set(s.sched.DeviceReady(core.DeviceID(d)))
	}
}

func (s *batchMakerSim) onTaskDone(w core.WorkerID, task *core.Task, end time.Duration) {
	for _, ref := range task.Nodes {
		req := s.reqs[ref.Req]
		released, err := req.tracker.NodeDone(ref.Node)
		if err != nil {
			panic(fmt.Sprintf("sim: node done: %v", err))
		}
		s.queuedCells--
		for _, spec := range released {
			spec.Deadline = int64(req.deadline)
			if _, err := s.sched.AddSubgraph(spec); err != nil {
				panic(fmt.Sprintf("sim: add released subgraph: %v", err))
			}
		}
		if req.tracker.Finished() {
			// The result returns to the user as soon as the last cell
			// finishes (notification already included in the event time).
			s.col.record(req.arrival, req.firstExec, end)
			delete(s.reqs, ref.Req)
			if req.deadline > 0 && end > req.deadline {
				s.misses++
			}
			if m := s.cfg.Metrics; m != nil {
				m.Completed.Inc()
				m.Inflight.Set(int64(len(s.reqs)))
				m.ObserveLatencySplit(req.firstExec-req.arrival, end-req.firstExec)
			}
			s.rpRing.Write(obsv.Record{
				Kind: obsv.KindComplete, Req: int64(ref.Req), T0: int64(end),
			})
			if p := s.cfg.Policy; p != nil {
				moves := p.Completed(int64(end), req.cells,
					req.firstExec-req.arrival, end-req.firstExec)
				for _, mv := range moves {
					s.rpRing.Write(obsv.Record{
						Kind:  obsv.KindPolicyBatch,
						Type:  s.typeIDs[mv.Key],
						Batch: uint16(mv.MaxBatch),
						T0:    int64(end),
					})
					s.sched.SetMaxBatch(mv.Key, mv.MaxBatch)
				}
			}
		}
	}
	if err := s.sched.TaskCompleted(task.ID); err != nil {
		panic(fmt.Sprintf("sim: task completed: %v", err))
	}
	s.inflight[w]--
	if s.inflight[w] == 0 {
		s.scheduleWorker(w)
	}
	// Newly released subgraphs may also feed other drained workers.
	s.kickIdleWorkers()
	s.mirrorReady()
}
