package sim

import (
	"testing"
	"time"

	"batchmaker/internal/dataset"
)

func timeoutCfg(timeout time.Duration) BucketingConfig {
	model := NewLSTMModel(512, 1)
	stepOv, batchOv := DefaultBucketingOverheads("MXNet")
	return BucketingConfig{
		SystemName: "MXNet", Model: model, Kind: KindChain,
		NumGPUs: 1, BucketWidth: 10, MaxBatch: 512,
		StepOverhead: stepOv, BatchOverhead: batchOv,
		BatchTimeout: timeout,
	}
}

func TestBucketingTimeoutDelaysLoneRequest(t *testing.T) {
	// A lone request must wait out the accumulation timeout before its
	// bucket becomes eligible.
	timeout := 20 * time.Millisecond
	wl := &FixedWorkload{Shape: Shape{Kind: KindChain, Len: 10}}
	res, err := RunBucketing(timeoutCfg(timeout), wl, RunConfig{
		RatePerSec: 20, Duration: 200 * time.Millisecond, Warmup: 50 * time.Millisecond, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if q := res.Queuing.P50(); q < timeout-time.Millisecond {
		t.Fatalf("p50 queuing %v below the %v timeout", q, timeout)
	}
	// Without a timeout the same workload queues almost not at all.
	wl2 := &FixedWorkload{Shape: Shape{Kind: KindChain, Len: 10}}
	res2, err := RunBucketing(timeoutCfg(0), wl2, RunConfig{
		RatePerSec: 20, Duration: 200 * time.Millisecond, Warmup: 50 * time.Millisecond, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Queuing.P50() >= res.Queuing.P50() {
		t.Fatalf("no-timeout queuing %v must beat timeout queuing %v",
			res2.Queuing.P50(), res.Queuing.P50())
	}
}

func TestBucketingTimeoutFullBatchBypassesWait(t *testing.T) {
	// With MaxBatch 2 and paired arrivals, batches fill instantly and the
	// timeout must not delay them.
	cfg := timeoutCfg(500 * time.Millisecond)
	cfg.MaxBatch = 2
	wl := &FixedWorkload{Shape: Shape{Kind: KindChain, Len: 5}}
	res, err := RunBucketing(cfg, wl, RunConfig{
		RatePerSec: 2_000, Duration: 100 * time.Millisecond, Warmup: 20 * time.Millisecond, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Median queuing far below the 500ms timeout proves full batches run
	// immediately.
	if q := res.Queuing.P50(); q > 100*time.Millisecond {
		t.Fatalf("p50 queuing %v: full batches must bypass the timeout", q)
	}
}

func TestBucketingNoTimeoutBeatsTimeoutAtModerateLoad(t *testing.T) {
	// §7.1: the no-timeout strategy achieves lower latency than the
	// timeout-based strategy.
	run := RunConfig{RatePerSec: 4_000, Duration: 500 * time.Millisecond, Warmup: 200 * time.Millisecond, Seed: 9}
	wlA := &LSTMWorkload{Lengths: dataset.NewWMTLengths(31)}
	noTimeout, err := RunBucketing(timeoutCfg(0), wlA, run)
	if err != nil {
		t.Fatal(err)
	}
	wlB := &LSTMWorkload{Lengths: dataset.NewWMTLengths(31)}
	withTimeout, err := RunBucketing(timeoutCfg(25*time.Millisecond), wlB, run)
	if err != nil {
		t.Fatal(err)
	}
	if noTimeout.Latency.P90() >= withTimeout.Latency.P90() {
		t.Fatalf("no-timeout p90 %v must beat timeout p90 %v",
			noTimeout.Latency.P90(), withTimeout.Latency.P90())
	}
}
