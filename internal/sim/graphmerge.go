package sim

import (
	"fmt"
	"time"

	"batchmaker/internal/cellgraph"
	"batchmaker/internal/dataset"
	"batchmaker/internal/device"
	"batchmaker/internal/metrics"
)

// GraphMergeConfig configures the dynamic graph-merging baselines
// (TensorFlow Fold and DyNet, §2.3 and §7.5): the system collects up to
// MaxBatch requests, generates a dataflow graph per request, merges the
// graphs by fusing equivalent operators, and executes the merged graph
// level-synchronously. Merging costs CPU time proportional to the total
// node count; Fold overlaps merging with GPU execution (the paper's own
// optimization), DyNet does not need to because its merge is cheaper.
type GraphMergeConfig struct {
	SystemName string
	Model      *Model
	NumGPUs    int
	// MaxBatch bounds the number of *input trees* per merged batch (64),
	// not the per-operator batch width (§7.5).
	MaxBatch int
	// MergePerNode is the CPU cost of graph construction+merging per cell
	// node. Fold (Python) is expensive; DyNet (C++) is much cheaper.
	MergePerNode time.Duration
	// OverlapMerge pipelines batch k+1's merge with batch k's execution.
	OverlapMerge bool
	// KernelSlowdown scales kernel times (Fold is pinned to TensorFlow
	// v1.0 + CUDA 8, ~20% slower, §7.5).
	KernelSlowdown float64
	// StepOverhead is the per-batched-operator launch cost.
	StepOverhead time.Duration
}

// DefaultFoldConfig returns the TensorFlow Fold calibration.
func DefaultFoldConfig(model *Model, gpus int) GraphMergeConfig {
	return GraphMergeConfig{
		SystemName:     "TF Fold",
		Model:          model,
		NumGPUs:        gpus,
		MaxBatch:       64,
		MergePerNode:   30 * time.Microsecond,
		OverlapMerge:   true,
		KernelSlowdown: 1.2,
		StepOverhead:   10 * time.Microsecond,
	}
}

// DefaultDyNetConfig returns the DyNet calibration.
func DefaultDyNetConfig(model *Model, gpus int) GraphMergeConfig {
	return GraphMergeConfig{
		SystemName:     "DyNet",
		Model:          model,
		NumGPUs:        gpus,
		MaxBatch:       64,
		MergePerNode:   7 * time.Microsecond,
		OverlapMerge:   false,
		KernelSlowdown: 1.0,
		StepOverhead:   8 * time.Microsecond,
	}
}

// treeProfile is the per-level node histogram of a tree: how many leaf
// cells run at height 0 and how many internal cells at each height above.
type treeProfile struct {
	leaves   int
	internal []int // internal[k-1] = nodes at height k
	nodes    int
}

func profileTree(t *cellgraph.Tree) treeProfile {
	var p treeProfile
	var walk func(n *cellgraph.Tree) int // returns height
	walk = func(n *cellgraph.Tree) int {
		p.nodes++
		if n.IsLeaf() {
			p.leaves++
			return 0
		}
		hl, hr := walk(n.Left), walk(n.Right)
		h := hl
		if hr > h {
			h = hr
		}
		h++
		for len(p.internal) < h {
			p.internal = append(p.internal, 0)
		}
		p.internal[h-1]++
		return h
	}
	walk(t)
	return p
}

type mergeRequest struct {
	arrival time.Duration
	profile treeProfile
}

type graphMergeSim struct {
	cfg   GraphMergeConfig
	run   RunConfig
	wl    Workload
	eng   *Engine
	queue []mergeRequest
	// Pipeline resources: one merge CPU and the GPUs.
	cpuFree time.Duration
	gpus    []*device.GPU
	busy    int // GPUs executing
	col     *collector
}

// RunGraphMerge simulates a graph-merging baseline at one load point.
func RunGraphMerge(cfg GraphMergeConfig, wl Workload, run RunConfig) (*metrics.RunResult, error) {
	if cfg.NumGPUs <= 0 || cfg.Model == nil {
		return nil, fmt.Errorf("sim: bad graph-merge config")
	}
	if cfg.KernelSlowdown <= 0 {
		cfg.KernelSlowdown = 1
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 64
	}
	s := &graphMergeSim{
		cfg:  cfg,
		run:  run,
		wl:   wl,
		eng:  NewEngine(),
		gpus: make([]*device.GPU, cfg.NumGPUs),
		col:  newCollector(cfg.SystemName, run),
	}
	for i := range s.gpus {
		s.gpus[i] = &device.GPU{ID: i}
	}
	arrivals := dataset.NewPoisson(run.Seed, run.RatePerSec)
	s.scheduleArrival(arrivals, time.Duration(arrivals.NextGapNanos()))
	for s.eng.Step() {
	}
	if len(s.queue) != 0 {
		return nil, fmt.Errorf("sim: graph-merge left %d requests queued", len(s.queue))
	}
	return s.col.result(), nil
}

func (s *graphMergeSim) scheduleArrival(p *dataset.Poisson, at time.Duration) {
	if at > s.run.end() {
		return
	}
	s.eng.At(at, func() {
		shape := s.wl.Next()
		if shape.Kind != KindTree {
			panic("sim: graph-merge baseline drives tree workloads")
		}
		s.queue = append(s.queue, mergeRequest{arrival: s.eng.Now(), profile: profileTree(shape.Tree)})
		s.tryDispatch()
		s.scheduleArrival(p, s.eng.Now()+time.Duration(p.NextGapNanos()))
	})
}

func (s *graphMergeSim) tryDispatch() {
	for s.busy < len(s.gpus) && len(s.queue) > 0 {
		take := len(s.queue)
		if take > s.cfg.MaxBatch {
			take = s.cfg.MaxBatch
		}
		batch := append([]mergeRequest(nil), s.queue[:take]...)
		s.queue = append([]mergeRequest(nil), s.queue[take:]...)
		s.dispatch(batch)
	}
}

func (s *graphMergeSim) dispatch(batch []mergeRequest) {
	totalNodes := 0
	leaves := 0
	var levels []int
	for _, r := range batch {
		totalNodes += r.profile.nodes
		leaves += r.profile.leaves
		for k, n := range r.profile.internal {
			for len(levels) <= k {
				levels = append(levels, 0)
			}
			levels[k] += n
		}
	}
	mergeCost := time.Duration(totalNodes) * s.cfg.MergePerNode
	now := s.eng.Now()

	// Merge stage (CPU).
	mergeStart := now
	if s.cpuFree > mergeStart {
		mergeStart = s.cpuFree
	}
	mergeEnd := mergeStart + mergeCost
	s.cpuFree = mergeEnd

	// Execution stage (GPU). Without overlap the merge blocks the pipeline
	// end to end; with overlap (Fold's optimization) execution of batch k
	// proceeds while batch k+1 merges, so the GPU only waits for this
	// batch's own merge.
	gpu := s.gpus[0]
	for _, g := range s.gpus[1:] {
		if g.BusyUntil() < gpu.BusyUntil() {
			gpu = g
		}
	}
	execTime := s.execTime(leaves, levels)
	start, end := gpu.Submit(mergeEnd, execTime)
	s.busy++
	reqs := batch
	s.eng.At(end, func() {
		for _, r := range reqs {
			s.col.record(r.arrival, start, end)
		}
		s.busy--
		s.tryDispatch()
	})
	if !s.cfg.OverlapMerge {
		// Serial pipeline: the CPU is also unavailable during execution
		// (Python driver blocks on the session).
		if end > s.cpuFree {
			s.cpuFree = end
		}
	}
}

// execTime is the merged graph's level-synchronous execution time: one
// batched leaf op over all leaves, then one batched internal op per height
// level. The amount of batching shrinks toward the roots (§7.5).
func (s *graphMergeSim) execTime(leaves int, levels []int) time.Duration {
	total := s.cfg.StepOverhead
	if leaves > 0 {
		total += scaleDur(s.cfg.Model.KernelTime(TypeLeaf, leaves), s.cfg.KernelSlowdown)
	}
	for _, n := range levels {
		if n == 0 {
			continue
		}
		total += s.cfg.StepOverhead
		total += scaleDur(s.cfg.Model.KernelTime(TypeInternal, n), s.cfg.KernelSlowdown)
	}
	return total
}

func scaleDur(d time.Duration, f float64) time.Duration {
	return time.Duration(float64(d) * f)
}

// RunIdealFixedTree simulates the paper's Figure 15 "Ideal" baseline: a
// hand-written static dataflow graph exactly matching one fixed tree
// structure, executing each of the tree's cells as a batch-64 operator in
// sequence. There is no merge cost and no padding, but also no within-
// request level fusion: a 16-leaf complete tree runs 31 sequential cells.
func RunIdealFixedTree(model *Model, gpus int, tree *cellgraph.Tree, maxBatch int, stepOverhead time.Duration, wl Workload, run RunConfig) (*metrics.RunResult, error) {
	if gpus <= 0 || model == nil {
		return nil, fmt.Errorf("sim: bad ideal config")
	}
	p := profileTree(tree)
	eng := NewEngine()
	devs := make([]*device.GPU, gpus)
	for i := range devs {
		devs[i] = &device.GPU{ID: i}
	}
	col := newCollector("Ideal", run)
	var queue []time.Duration // arrival times
	busy := 0

	// Per-batch execution: every cell of the fixed graph is one batched op
	// at the batch's request count.
	execTime := func(b int) time.Duration {
		leafT := model.KernelTime(TypeLeaf, b) + stepOverhead
		intT := model.KernelTime(TypeInternal, b) + stepOverhead
		return time.Duration(p.leaves)*leafT + time.Duration(p.nodes-p.leaves)*intT
	}

	var tryDispatch func()
	tryDispatch = func() {
		for busy < gpus && len(queue) > 0 {
			take := len(queue)
			if take > maxBatch {
				take = maxBatch
			}
			batch := append([]time.Duration(nil), queue[:take]...)
			queue = append([]time.Duration(nil), queue[take:]...)
			gpu := devs[0]
			for _, g := range devs[1:] {
				if g.BusyUntil() < gpu.BusyUntil() {
					gpu = g
				}
			}
			start, end := gpu.Submit(eng.Now(), execTime(take))
			busy++
			eng.At(end, func() {
				for _, a := range batch {
					col.record(a, start, end)
				}
				busy--
				tryDispatch()
			})
		}
	}

	arrivals := dataset.NewPoisson(run.Seed, run.RatePerSec)
	var scheduleArrival func(at time.Duration)
	scheduleArrival = func(at time.Duration) {
		if at > run.end() {
			return
		}
		eng.At(at, func() {
			wl.Next() // consume for parity with other sims
			queue = append(queue, eng.Now())
			tryDispatch()
			scheduleArrival(eng.Now() + time.Duration(arrivals.NextGapNanos()))
		})
	}
	scheduleArrival(time.Duration(arrivals.NextGapNanos()))
	for eng.Step() {
	}
	if len(queue) != 0 {
		return nil, fmt.Errorf("sim: ideal left %d requests queued", len(queue))
	}
	return col.result(), nil
}
