package sim

import (
	"math"
	"testing"

	"batchmaker/internal/device"
)

// TestQuantTierPricing prices the int8 execution tier in the simulator's
// cost model: deriving "lstm+int8" from the measured StepInto speedup must
// cut both the kernel latency and the kernel energy the scheduler would
// see, without changing the throughput-optimal batch size (the curve shape
// — knee and fixed/per-row ratio — is preserved, only the scale changes).
func TestQuantTierPricing(t *testing.T) {
	const (
		speedup    = 2.13 // measured LSTM f32/int8 ns-per-step ratio (BENCH_server.json)
		tierKey    = TypeLSTM + "+int8"
		powerRatio = device.Int8PowerRatio
	)

	m := NewLSTMModel(64, 1)
	if err := m.Costs().DeriveQuantTier(TypeLSTM, tierKey, speedup, powerRatio); err != nil {
		t.Fatalf("DeriveQuantTier: %v", err)
	}

	for _, b := range []int{1, 8, 64, 512} {
		f32 := m.KernelTime(TypeLSTM, b)
		i8 := m.KernelTime(tierKey, b)
		ratio := float64(f32) / float64(i8)
		if math.Abs(ratio-speedup) > 0.02 {
			t.Fatalf("b=%d: latency speedup %.3f, want ~%.2f", b, ratio, speedup)
		}

		eRatio := m.Costs().KernelEnergy(tierKey, b) / m.Costs().KernelEnergy(TypeLSTM, b)
		wantE := powerRatio / speedup
		if math.Abs(eRatio-wantE) > 0.01 {
			t.Fatalf("b=%d: energy ratio %.3f, want ~%.3f", b, eRatio, wantE)
		}
	}

	// The tier rescales the curve uniformly, so the offline best-batch
	// choice (§4.2's "desired maximum batch size") is unchanged.
	base, _ := m.Costs().Curve(TypeLSTM)
	tier, ok := m.Costs().Curve(tierKey)
	if !ok {
		t.Fatal("tier curve not registered")
	}
	if got, want := tier.BestBatch(512), base.BestBatch(512); got != want {
		t.Fatalf("BestBatch changed under uniform rescale: %d vs %d", got, want)
	}

	// Paper anchor sanity: the f32 curve still passes through 185µs@64,
	// and the derived tier prices that same batch at 185µs/speedup.
	wantNS := float64(device.LSTMStep64.Nanoseconds()) / speedup
	gotNS := float64(m.KernelTime(tierKey, 64).Nanoseconds())
	if math.Abs(gotNS-wantNS)/wantNS > 0.01 {
		t.Fatalf("tier time at b=64: %.0fns, want ~%.0fns", gotNS, wantNS)
	}
}
