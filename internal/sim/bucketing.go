package sim

import (
	"fmt"
	"time"

	"batchmaker/internal/dataset"
	"batchmaker/internal/device"
	"batchmaker/internal/metrics"
)

// BucketingConfig configures the padding+bucketing graph-batching baseline
// (TensorFlow / MXNet, §7.1): requests are assigned to buckets by length,
// padded to the bucket's upper bound, and executed as whole unfolded graphs
// under round-robin bucket scheduling. There are no batch-formation
// timeouts: a bucket's (possibly partial) batch starts as soon as a GPU is
// idle and the round-robin turn reaches it, which §7.1 found strictly better
// than timeouts.
type BucketingConfig struct {
	// SystemName labels the result rows ("TensorFlow" or "MXNet").
	SystemName string
	Model      *Model
	Kind       RequestKind // KindChain or KindSeq2Seq
	NumGPUs    int
	// BucketWidth is the maximum length difference within a bucket
	// (default 10, the paper's best trade-off).
	BucketWidth int
	// MaxBatch is the per-bucket maximum batch size.
	MaxBatch int
	// MaxLen bounds the bucket table (WMT: 330).
	MaxLen int
	// StepOverhead is the per-unfolded-step launch cost inside a
	// materialized static graph (kernels pipeline well, so this is small).
	StepOverhead time.Duration
	// BatchOverhead is the per-batch dispatch cost (session overhead,
	// input feeding).
	BatchOverhead time.Duration
	// BatchTimeout, when positive, switches to timeout-based batch
	// formation: a bucket becomes eligible only when it holds MaxBatch
	// requests or its oldest request has waited BatchTimeout. The paper
	// evaluated this strategy and found the no-timeout policy (execute a
	// partial batch whenever a GPU is idle and it is the bucket's turn)
	// strictly better (§7.1); the ablation-timeout experiment reproduces
	// that comparison.
	BatchTimeout time.Duration
}

// DefaultBucketingOverheads returns (stepOverhead, batchOverhead) for the
// named framework; TensorFlow's dispatch path is slightly heavier than
// MXNet's, producing the small separation visible in the paper's figures.
func DefaultBucketingOverheads(system string) (time.Duration, time.Duration) {
	if system == "TensorFlow" {
		return 6 * time.Microsecond, 150 * time.Microsecond
	}
	return 5 * time.Microsecond, 100 * time.Microsecond
}

type bucketRequest struct {
	arrival time.Duration
	shape   Shape
}

type bucketingSim struct {
	cfg     BucketingConfig
	run     RunConfig
	wl      Workload
	eng     *Engine
	gpus    []*device.GPU
	busy    []bool
	buckets [][]bucketRequest
	rr      int
	col     *collector
	pending int
	// wakeAt is the virtual time of the scheduled timeout wake-up event
	// (0 when none is pending); only used with BatchTimeout.
	wakeAt time.Duration
}

// RunBucketing simulates the padding+bucketing baseline at one load point.
func RunBucketing(cfg BucketingConfig, wl Workload, run RunConfig) (*metrics.RunResult, error) {
	if cfg.NumGPUs <= 0 || cfg.Model == nil {
		return nil, fmt.Errorf("sim: bad bucketing config")
	}
	if cfg.Kind != KindChain && cfg.Kind != KindSeq2Seq {
		return nil, fmt.Errorf("sim: bucketing supports chain and seq2seq workloads only (padding cannot batch trees)")
	}
	if cfg.BucketWidth <= 0 {
		cfg.BucketWidth = 10
	}
	if cfg.MaxLen <= 0 {
		cfg.MaxLen = dataset.WMTMaxLen
	}
	nBuckets := (cfg.MaxLen + cfg.BucketWidth - 1) / cfg.BucketWidth
	s := &bucketingSim{
		cfg:     cfg,
		run:     run,
		wl:      wl,
		eng:     NewEngine(),
		gpus:    make([]*device.GPU, cfg.NumGPUs),
		busy:    make([]bool, cfg.NumGPUs),
		buckets: make([][]bucketRequest, nBuckets),
		col:     newCollector(cfg.SystemName, run),
	}
	for i := range s.gpus {
		s.gpus[i] = &device.GPU{ID: i}
	}
	arrivals := dataset.NewPoisson(run.Seed, run.RatePerSec)
	s.scheduleArrival(arrivals, time.Duration(arrivals.NextGapNanos()))
	for s.eng.Step() {
	}
	if s.pending != 0 {
		return nil, fmt.Errorf("sim: bucketing left %d requests queued", s.pending)
	}
	return s.col.result(), nil
}

func (s *bucketingSim) scheduleArrival(p *dataset.Poisson, at time.Duration) {
	if at > s.run.end() {
		return
	}
	s.eng.At(at, func() {
		shape := s.wl.Next()
		b := s.bucketOf(shape)
		s.buckets[b] = append(s.buckets[b], bucketRequest{arrival: s.eng.Now(), shape: shape})
		s.pending++
		s.dispatchIdle()
		s.scheduleArrival(p, s.eng.Now()+time.Duration(p.NextGapNanos()))
	})
}

// lenOf is the padding-relevant length of a request: the chain length, or
// for Seq2Seq the longer of the source and target (both phases pad to it).
func (s *bucketingSim) lenOf(shape Shape) int {
	l := shape.Len
	if shape.Kind == KindSeq2Seq {
		l = shape.SrcLen
		if shape.DstLen > l {
			l = shape.DstLen
		}
	}
	return l
}

// bucketOf maps a request to its bucket index: the i-th bucket handles
// lengths in (i*w, (i+1)*w].
func (s *bucketingSim) bucketOf(shape Shape) int {
	b := (s.lenOf(shape) - 1) / s.cfg.BucketWidth
	if b >= len(s.buckets) {
		b = len(s.buckets) - 1
	}
	return b
}

// dispatchIdle hands bucket batches to every idle GPU under round-robin.
// With BatchTimeout configured it also arms a wake-up for the earliest
// not-yet-eligible bucket.
func (s *bucketingSim) dispatchIdle() {
	for g := range s.gpus {
		if s.busy[g] {
			continue
		}
		b, wake := s.nextEligibleBucket()
		if b < 0 {
			if wake > 0 && (s.wakeAt == 0 || wake < s.wakeAt) {
				s.wakeAt = wake
				s.eng.At(wake, func() {
					s.wakeAt = 0
					s.dispatchIdle()
				})
			}
			return
		}
		s.execBucketBatch(g, b)
	}
}

// nextEligibleBucket returns the next bucket to execute under round-robin,
// or (-1, earliestEligibility) when none qualifies yet.
func (s *bucketingSim) nextEligibleBucket() (int, time.Duration) {
	n := len(s.buckets)
	var earliest time.Duration
	for i := 0; i < n; i++ {
		idx := (s.rr + i) % n
		q := s.buckets[idx]
		if len(q) == 0 {
			continue
		}
		if s.cfg.BatchTimeout > 0 && len(q) < s.cfg.MaxBatch {
			ready := q[0].arrival + s.cfg.BatchTimeout
			if ready > s.eng.Now() {
				if earliest == 0 || ready < earliest {
					earliest = ready
				}
				continue
			}
		}
		s.rr = (idx + 1) % n
		return idx, 0
	}
	return -1, earliest
}

func (s *bucketingSim) execBucketBatch(g, b int) {
	take := len(s.buckets[b])
	if take > s.cfg.MaxBatch {
		take = s.cfg.MaxBatch
	}
	batch := s.buckets[b][:take]
	s.buckets[b] = append([]bucketRequest(nil), s.buckets[b][take:]...)
	s.pending -= take

	// Padding goes to the longest request in the batch; the bucket bound
	// caps the waste at BucketWidth-1 steps. (This is why the paper's
	// fixed-length experiment reaches the no-padding theoretical peak.)
	padded := 0
	for _, r := range batch {
		l := s.lenOf(r.shape)
		if l > padded {
			padded = l
		}
	}
	dur := s.batchTime(padded, take)
	start, end := s.gpus[g].Submit(s.eng.Now(), dur)
	s.busy[g] = true
	reqs := append([]bucketRequest(nil), batch...)
	s.eng.At(end, func() {
		// Graph batching: every request in the batch completes only when
		// the whole padded graph finishes (§2.3).
		for _, r := range reqs {
			s.col.record(r.arrival, start, end)
		}
		s.busy[g] = false
		s.dispatchIdle()
	})
}

// batchTime is the execution time of one padded graph at the given batch
// size: padded-length steps of the (encoder and, for Seq2Seq, decoder) cell.
func (s *bucketingSim) batchTime(paddedLen, batch int) time.Duration {
	switch s.cfg.Kind {
	case KindChain:
		step := s.cfg.Model.KernelTime(TypeLSTM, batch) + s.cfg.StepOverhead
		return s.cfg.BatchOverhead + time.Duration(paddedLen)*step
	case KindSeq2Seq:
		encStep := s.cfg.Model.KernelTime(TypeEncoder, batch) + s.cfg.StepOverhead
		decStep := s.cfg.Model.KernelTime(TypeDecoder, batch) + s.cfg.StepOverhead
		return s.cfg.BatchOverhead + time.Duration(paddedLen)*(encStep+decStep)
	}
	panic("sim: unreachable")
}
