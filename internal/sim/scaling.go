package sim

import (
	"fmt"

	"batchmaker/internal/metrics"
)

// ScalingPoint is one measured device count on the multi-GPU scaling curve.
type ScalingPoint struct {
	NumGPUs    int
	Throughput float64 // completions/sec inside the measured window
	Result     *metrics.RunResult
}

// RunScalingCurve reproduces the paper's multi-GPU scaling experiment in
// virtual time: the same saturating open-loop workload offered to clusters
// of increasing size, so each point reports that cluster's saturation
// throughput rather than the offered rate. newWorkload must return a fresh,
// identically-seeded workload per point so every cluster size sees the same
// request sequence.
func RunScalingCurve(base BatchMakerConfig, newWorkload func() Workload, run RunConfig, gpuCounts []int) ([]ScalingPoint, error) {
	points := make([]ScalingPoint, 0, len(gpuCounts))
	for _, n := range gpuCounts {
		if n <= 0 {
			return nil, fmt.Errorf("sim: scaling point with %d GPUs", n)
		}
		cfg := base
		cfg.NumGPUs = n
		cfg.Cluster = nil // rebuilt per point to match the device count
		res, err := RunBatchMaker(cfg, newWorkload(), run)
		if err != nil {
			return nil, fmt.Errorf("sim: scaling point %d GPUs: %w", n, err)
		}
		points = append(points, ScalingPoint{NumGPUs: n, Throughput: res.Throughput(), Result: res})
	}
	return points, nil
}
