package sim

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	"batchmaker/internal/dataset"
	"batchmaker/internal/device"
)

var updateGolden = flag.Bool("update", false, "rewrite the simulator golden files")

// goldenTimeline renders everything the determinism contract covers: the
// Figure 5 illustrative timelines (pure functions) and a full seeded
// BatchMaker event-driven run (engine heap order, Poisson arrivals,
// scheduler decisions, GPU stream timing). Any change to scheduler policy,
// cost curves, or event ordering shows up as a golden diff — intentional
// changes re-bless with `go test ./internal/sim -run TestGolden -update`.
func goldenTimeline() string {
	var b strings.Builder

	reqs := Figure5Requests()
	b.WriteString(FormatTimeline("graph batching (batch=2)", GraphBatchingTimeline(reqs, 2)))
	b.WriteString("\n")
	b.WriteString(FormatTimeline("cellular batching (batch=2)", CellularBatchingTimeline(reqs, 2)))
	b.WriteString("\n")

	res, err := RunBatchMaker(
		BatchMakerConfig{
			Model:            NewLSTMModel(8, 1),
			NumGPUs:          2,
			Overheads:        device.DefaultOverheads(),
			MaxTasksToSubmit: 2,
		},
		&LSTMWorkload{Lengths: dataset.NewUniformLengths(7, 4, 24)},
		RunConfig{RatePerSec: 2000, Duration: 50 * time.Millisecond, Warmup: 5 * time.Millisecond, Seed: 7},
	)
	if err != nil {
		return fmt.Sprintf("ERROR: %v\n", err)
	}
	fmt.Fprintf(&b, "batchmaker seeded run (lstm, 2 gpus, rate 2000/s, seed 7)\n")
	fmt.Fprintf(&b, "completed   %d\n", res.Completed)
	fmt.Fprintf(&b, "latency     mean=%v p50=%v p99=%v\n", res.Latency.Mean(), res.Latency.P50(), res.Latency.P99())
	fmt.Fprintf(&b, "queuing     mean=%v p50=%v\n", res.Queuing.Mean(), res.Queuing.P50())
	keys := make([]string, 0, len(res.Extra))
	for k := range res.Extra {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&b, "extra       %s=%g\n", k, res.Extra[k])
	}
	return b.String()
}

// TestGoldenTimeline pins the simulator's determinism: a fixed seed must
// reproduce the checked-in timeline byte for byte, run after run, machine
// after machine (virtual time owes nothing to the wall clock).
func TestGoldenTimeline(t *testing.T) {
	got := goldenTimeline()
	if again := goldenTimeline(); again != got {
		t.Fatalf("simulator nondeterministic across runs in one process:\n--- first\n%s\n--- second\n%s", got, again)
	}

	path := filepath.Join("testdata", "timeline.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Fatalf("timeline deviates from golden %s (re-bless with -update if intentional):\n%s",
			path, diffLines(string(want), got))
	}
}

// diffLines reports the first divergent line, with context.
func diffLines(want, got string) string {
	ws, gs := strings.Split(want, "\n"), strings.Split(got, "\n")
	n := len(ws)
	if len(gs) < n {
		n = len(gs)
	}
	for i := 0; i < n; i++ {
		if ws[i] != gs[i] {
			return fmt.Sprintf("line %d:\n  want: %q\n  got:  %q", i+1, ws[i], gs[i])
		}
	}
	return fmt.Sprintf("line counts differ: want %d, got %d", len(ws), len(gs))
}
