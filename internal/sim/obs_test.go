package sim

import (
	"strings"
	"testing"

	"batchmaker/internal/obsv"
	"batchmaker/internal/rnn"
	"batchmaker/internal/server"
	"batchmaker/internal/tensor"
)

// TestSimMetricsHook runs a virtual-time simulation with a metrics registry
// attached and asserts the families the live server publishes are fed by
// the sim too, with values consistent with the run result.
func TestSimMetricsHook(t *testing.T) {
	reg := obsv.NewRegistry()
	m := obsv.NewServingMetrics(reg)
	model := NewLSTMModel(512, 1)
	cfg := defaultBMConfig(model, 1)
	cfg.Metrics = m
	wl := &FixedWorkload{Shape: Shape{Kind: KindChain, Len: 8}}
	if _, err := RunBatchMaker(cfg, wl, shortRun(100, 1)); err != nil {
		t.Fatal(err)
	}

	admitted, completed := m.Admitted.Value(), m.Completed.Value()
	if admitted == 0 || admitted != completed {
		t.Fatalf("sim outcomes: admitted=%d completed=%d (the sim drains fully)", admitted, completed)
	}
	if m.Inflight.Value() != 0 {
		t.Fatalf("inflight should drain to 0, got %d", m.Inflight.Value())
	}
	// Every completion contributes one observation to each latency summary.
	if m.Queuing.Count() != completed || m.Computation.Count() != completed {
		t.Fatalf("latency split observations: queuing=%d computation=%d want %d",
			m.Queuing.Count(), m.Computation.Count(), completed)
	}
	if m.BatchOccupancy.Count() == 0 {
		t.Fatal("no batch occupancy observations")
	}
	if used, cap := m.SlotsUsed.Value(), m.SlotsCap.Value(); used == 0 || cap < used {
		t.Fatalf("slot accounting: used=%d cap=%d", used, cap)
	}
	stats := m.TypesByCells()
	if len(stats) != 1 || stats[0].Key != TypeLSTM || stats[0].Cells != m.SlotsUsed.Value() {
		t.Fatalf("per-type totals: %+v", stats)
	}
}

// TestSimServerFamilyParity pins the tentpole promise: a virtual-time sim
// run and the live server publish the same core metric families, so the
// same dashboards and scrapes work against both. The live set is a
// superset (it adds worker/arena/trace families the sim has no analog
// for); every family the sim emits must exist on the live side, and the
// shared serving core must be present in both.
func TestSimServerFamilyParity(t *testing.T) {
	// Sim side.
	simReg := obsv.NewRegistry()
	cfg := defaultBMConfig(NewLSTMModel(512, 1), 1)
	cfg.Metrics = obsv.NewServingMetrics(simReg)
	wl := &FixedWorkload{Shape: Shape{Kind: KindChain, Len: 4}}
	if _, err := RunBatchMaker(cfg, wl, shortRun(50, 1)); err != nil {
		t.Fatal(err)
	}

	// Live side: a real server with observability on.
	lstm := rnn.NewLSTMCell("lstm", 8, 16, tensor.NewRNG(1))
	srv, err := server.New(server.Config{
		Workers: 1,
		Cells:   []server.CellSpec{{Cell: lstm, MaxBatch: 8}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Stop()
	liveSet := map[string]bool{}
	for _, name := range srv.Metrics().Registry().FamilyNames() {
		liveSet[name] = true
	}

	for _, name := range simReg.FamilyNames() {
		if !liveSet[name] {
			t.Errorf("sim family %q not published by the live server", name)
		}
	}
	for _, name := range []string{
		obsv.MetricRequestsTotal, obsv.MetricBatchOccupancy,
		obsv.MetricBatchSlotsUsed, obsv.MetricBatchSlotsCap, obsv.MetricPaddingWasteRatio,
		obsv.MetricQueuingSeconds, obsv.MetricComputationSeconds,
		obsv.MetricReadyQueueDepth, obsv.MetricTasksExecuted, obsv.MetricCellsExecuted,
	} {
		if !liveSet[name] {
			t.Errorf("live server missing core family %q", name)
		}
		found := false
		for _, n := range simReg.FamilyNames() {
			if n == name {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("sim registry missing core family %q", name)
		}
	}

	// Both expositions parse as the same family text format.
	var b strings.Builder
	if err := simReg.WritePromTo(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "# TYPE "+obsv.MetricBatchOccupancy+" histogram") {
		t.Fatalf("sim exposition missing histogram TYPE line:\n%s", b.String())
	}
}
