package sim

import (
	"fmt"
	"sort"
	"strings"
)

// TimelineRequest is one request of the Figure 5 scenario: arrival time and
// sequence length, both in abstract unit timesteps (one RNN cell = one unit).
type TimelineRequest struct {
	Name    string
	Arrival int
	Len     int
}

// TimelineEntry records one request's lifetime under a batching policy.
type TimelineEntry struct {
	Name       string
	Arrival    int
	Start      int // first unit of execution
	Completion int // time the request's last cell finished
}

// Latency returns completion - arrival.
func (e TimelineEntry) Latency() int { return e.Completion - e.Arrival }

// Figure5Requests returns the paper's example workload: req1-4 arrive at
// t=0 with lengths 2,3,3,5; req5-8 arrive just after (lengths 5,7,3,1).
func Figure5Requests() []TimelineRequest {
	return []TimelineRequest{
		{Name: "req1", Arrival: 0, Len: 2},
		{Name: "req2", Arrival: 0, Len: 3},
		{Name: "req3", Arrival: 0, Len: 3},
		{Name: "req4", Arrival: 0, Len: 5},
		{Name: "req5", Arrival: 1, Len: 5},
		{Name: "req6", Arrival: 1, Len: 7},
		{Name: "req7", Arrival: 1, Len: 3},
		{Name: "req8", Arrival: 1, Len: 1},
	}
}

// GraphBatchingTimeline executes the requests under graph batching with the
// given batch size: collect up to batchSize queued requests, pad to the
// longest, run to completion, repeat (Figure 5a).
func GraphBatchingTimeline(reqs []TimelineRequest, batchSize int) []TimelineEntry {
	pending := append([]TimelineRequest(nil), reqs...)
	sort.SliceStable(pending, func(i, j int) bool { return pending[i].Arrival < pending[j].Arrival })
	entries := make([]TimelineEntry, 0, len(reqs))
	now := 0
	for len(pending) > 0 {
		// Admit arrived requests, up to batchSize.
		var batch []TimelineRequest
		rest := pending[:0]
		for _, r := range pending {
			if r.Arrival <= now && len(batch) < batchSize {
				batch = append(batch, r)
			} else {
				rest = append(rest, r)
			}
		}
		if len(batch) == 0 {
			// Idle until the next arrival.
			now = rest[0].Arrival
			pending = rest
			continue
		}
		pending = append([]TimelineRequest(nil), rest...)
		longest := 0
		for _, r := range batch {
			if r.Len > longest {
				longest = r.Len
			}
		}
		for _, r := range batch {
			entries = append(entries, TimelineEntry{
				Name:    r.Name,
				Arrival: r.Arrival,
				Start:   now,
				// Graph batching: everyone waits for the longest (§2.3).
				Completion: now + longest,
			})
		}
		now += longest
	}
	sortEntries(entries)
	return entries
}

// CellularBatchingTimeline executes the requests under cellular batching
// with the given batch size: at every unit step, the batch is refilled with
// ready cells from the oldest requests, new arrivals join immediately, and
// a request departs the moment its last cell finishes (Figure 5b).
func CellularBatchingTimeline(reqs []TimelineRequest, batchSize int) []TimelineEntry {
	type live struct {
		req  TimelineRequest
		done int
		ent  *TimelineEntry
	}
	entries := make([]TimelineEntry, len(reqs))
	for i, r := range reqs {
		entries[i] = TimelineEntry{Name: r.Name, Arrival: r.Arrival, Start: -1}
	}
	byName := make(map[string]*TimelineEntry, len(reqs))
	for i := range entries {
		byName[entries[i].Name] = &entries[i]
	}
	var queue []*live
	upcoming := append([]TimelineRequest(nil), reqs...)
	sort.SliceStable(upcoming, func(i, j int) bool { return upcoming[i].Arrival < upcoming[j].Arrival })
	now := 0
	for len(queue) > 0 || len(upcoming) > 0 {
		for len(upcoming) > 0 && upcoming[0].Arrival <= now {
			r := upcoming[0]
			upcoming = upcoming[1:]
			queue = append(queue, &live{req: r, ent: byName[r.Name]})
		}
		if len(queue) == 0 {
			now = upcoming[0].Arrival
			continue
		}
		// Form one batched cell task from the oldest ready requests.
		n := len(queue)
		if n > batchSize {
			n = batchSize
		}
		for _, l := range queue[:n] {
			if l.ent.Start < 0 {
				l.ent.Start = now
			}
			l.done++
		}
		now++
		var stillLive []*live
		for i, l := range queue {
			if i < n && l.done == l.req.Len {
				l.ent.Completion = now
				continue
			}
			stillLive = append(stillLive, l)
		}
		queue = stillLive
	}
	sortEntries(entries)
	return entries
}

func sortEntries(entries []TimelineEntry) {
	sort.Slice(entries, func(i, j int) bool { return entries[i].Name < entries[j].Name })
}

// TotalSpan returns the time the last request completes.
func TotalSpan(entries []TimelineEntry) int {
	max := 0
	for _, e := range entries {
		if e.Completion > max {
			max = e.Completion
		}
	}
	return max
}

// MeanLatency returns the average latency across entries.
func MeanLatency(entries []TimelineEntry) float64 {
	if len(entries) == 0 {
		return 0
	}
	sum := 0
	for _, e := range entries {
		sum += e.Latency()
	}
	return float64(sum) / float64(len(entries))
}

// FormatTimeline renders entries as an ASCII Gantt chart like Figure 5.
func FormatTimeline(title string, entries []TimelineEntry) string {
	var b strings.Builder
	span := TotalSpan(entries)
	fmt.Fprintf(&b, "%s (total span %d)\n", title, span)
	for _, e := range entries {
		fmt.Fprintf(&b, "%-6s ", e.Name)
		for t := 0; t < span; t++ {
			switch {
			case t < e.Arrival:
				b.WriteByte(' ')
			case t < e.Start:
				b.WriteByte('.') // queued
			case t < e.Completion:
				b.WriteByte('#') // executing (or riding in the batch)
			default:
				b.WriteByte(' ')
			}
		}
		fmt.Fprintf(&b, " latency=%d\n", e.Latency())
	}
	return b.String()
}
