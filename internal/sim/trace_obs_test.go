package sim

import (
	"bytes"
	"encoding/json"
	"testing"

	"batchmaker/internal/obsv"
)

// TestSimTraceExport: a virtual-time run with an Observer attached
// assembles the same Perfetto trace the live server produces — valid
// JSON, worker tracks declared, batch slices present, and completed
// requests chained across tracks by flow arrows at virtual timestamps.
func TestSimTraceExport(t *testing.T) {
	o := obsv.NewObserver(obsv.NewRegistry(), 0, 1)
	cfg := defaultBMConfig(NewLSTMModel(512, 1), 2)
	cfg.Observer = o
	wl := &FixedWorkload{Shape: Shape{Kind: KindChain, Len: 6}}
	res, err := RunBatchMaker(cfg, wl, shortRun(200, 1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed == 0 {
		t.Fatal("sim run served no requests")
	}

	var b bytes.Buffer
	if err := o.WriteTrace(&b, obsv.TraceOptions{}); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			ID   int64          `json:"id"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(b.Bytes(), &doc); err != nil {
		t.Fatalf("sim trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("sim trace is empty for an observed run")
	}

	workerTracks := 0
	var execSlices, annotated int
	type hop struct {
		ph  string
		pid int
	}
	flows := map[int64][]hop{}
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "M":
			if ev.Name == "thread_name" {
				if name, _ := ev.Args["name"].(string); len(name) > 7 && name[:7] == "worker-" {
					workerTracks++
				}
			}
		case "s", "t", "f":
			flows[ev.ID] = append(flows[ev.ID], hop{ev.Ph, ev.Pid})
		case "X":
			if ev.Name == TypeLSTM {
				execSlices++
				if ev.Args != nil {
					if _, ok := ev.Args["occupancy"]; ok {
						annotated++
					}
				}
			}
		}
	}
	if workerTracks != 2 {
		t.Fatalf("sim trace declares %d worker tracks, want 2", workerTracks)
	}
	if execSlices == 0 || annotated == 0 {
		t.Fatalf("sim trace has %d exec slices, %d annotated", execSlices, annotated)
	}
	// At least one request must have its full cross-track flow chain in the
	// retained window: start and finish on the pipeline process with an
	// interior hop on a device-pool track.
	chained := 0
	for _, hops := range flows {
		var start, end, cross bool
		for _, h := range hops {
			switch {
			case h.ph == "s" && h.pid == 1:
				start = true
			case h.ph == "f" && h.pid == 1:
				end = true
			case h.ph == "t" && h.pid >= 10:
				cross = true
			}
		}
		if start && end && cross {
			chained++
		}
	}
	if chained == 0 {
		t.Fatal("no completed request has a cross-track flow chain in the sim trace")
	}
}
