package sim

import (
	"strings"
	"testing"
)

func entryByName(t *testing.T, entries []TimelineEntry, name string) TimelineEntry {
	t.Helper()
	for _, e := range entries {
		if e.Name == name {
			return e
		}
	}
	t.Fatalf("no entry %q", name)
	return TimelineEntry{}
}

func TestGraphBatchingTimelineMatchesFigure5a(t *testing.T) {
	entries := GraphBatchingTimeline(Figure5Requests(), 4)
	// First batch (req1-4) padded to the longest (5): all finish at t=5.
	for _, name := range []string{"req1", "req2", "req3", "req4"} {
		e := entryByName(t, entries, name)
		if e.Start != 0 || e.Completion != 5 {
			t.Fatalf("%s = %+v, want start 0 completion 5", name, e)
		}
	}
	// Second batch (req5-8) runs t=5..12 (longest 7).
	for _, name := range []string{"req5", "req6", "req7", "req8"} {
		e := entryByName(t, entries, name)
		if e.Start != 5 || e.Completion != 12 {
			t.Fatalf("%s = %+v, want start 5 completion 12", name, e)
		}
	}
	if TotalSpan(entries) != 12 {
		t.Fatalf("span = %d, want 12", TotalSpan(entries))
	}
}

func TestCellularBatchingTimelineMatchesFigure5b(t *testing.T) {
	entries := CellularBatchingTimeline(Figure5Requests(), 4)
	// Req1 (len 2) departs at t=2; req5 joins the t=2 task immediately.
	if e := entryByName(t, entries, "req1"); e.Completion != 2 {
		t.Fatalf("req1 completion = %d, want 2", e.Completion)
	}
	if e := entryByName(t, entries, "req5"); e.Start != 2 {
		t.Fatalf("req5 start = %d, want 2 (joins ongoing execution)", e.Start)
	}
	// Req2/req3 (len 3) depart at t=3; req8 (len 1) is batched at t=3 and
	// departs at t=4 without waiting for longer requests.
	if e := entryByName(t, entries, "req2"); e.Completion != 3 {
		t.Fatalf("req2 completion = %d, want 3", e.Completion)
	}
	// Req8 (len 1) queues behind the FIFO window but still departs well
	// before the long requests and never waits for them to finish.
	req8 := entryByName(t, entries, "req8")
	req6 := entryByName(t, entries, "req6")
	if req8.Completion >= req6.Completion {
		t.Fatalf("req8 (len 1) completes at %d, after req6 (len 7) at %d", req8.Completion, req6.Completion)
	}
	if req8.Completion-req8.Start != 1 {
		t.Fatalf("req8 computation = %d units, want 1", req8.Completion-req8.Start)
	}
	// Cellular batching finishes the whole workload sooner than graph
	// batching (12): total cells = 29, batch 4 → at least 8 units; the
	// paper's figure drains around t=8.
	span := TotalSpan(entries)
	if span >= 12 {
		t.Fatalf("cellular span = %d, must beat graph batching's 12", span)
	}
	if span < 8 {
		t.Fatalf("cellular span = %d, impossible (<ceil(29/4))", span)
	}
	// Every request's mean latency improves.
	g := MeanLatency(GraphBatchingTimeline(Figure5Requests(), 4))
	c := MeanLatency(entries)
	if c >= g {
		t.Fatalf("cellular mean latency %v !< graph %v", c, g)
	}
}

func TestCellularTimelineIdleGapHandled(t *testing.T) {
	reqs := []TimelineRequest{
		{Name: "a", Arrival: 0, Len: 1},
		{Name: "b", Arrival: 10, Len: 2},
	}
	entries := CellularBatchingTimeline(reqs, 4)
	if e := entryByName(t, entries, "a"); e.Completion != 1 {
		t.Fatalf("a = %+v", e)
	}
	if e := entryByName(t, entries, "b"); e.Start != 10 || e.Completion != 12 {
		t.Fatalf("b = %+v", e)
	}
	gentries := GraphBatchingTimeline(reqs, 4)
	if e := entryByName(t, gentries, "b"); e.Start != 10 || e.Completion != 12 {
		t.Fatalf("graph b = %+v", e)
	}
}

func TestFormatTimelineRendersAllRequests(t *testing.T) {
	entries := CellularBatchingTimeline(Figure5Requests(), 4)
	out := FormatTimeline("cellular", entries)
	for _, name := range []string{"req1", "req8"} {
		if !strings.Contains(out, name) {
			t.Fatalf("timeline missing %s:\n%s", name, out)
		}
	}
}

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var got []int
	e.At(30, func() { got = append(got, 3) })
	e.At(10, func() { got = append(got, 1) })
	e.At(10, func() { got = append(got, 2) }) // same time: insertion order
	for e.Step() {
	}
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("order = %v", got)
	}
	if e.Now() != 30 {
		t.Fatalf("now = %v", e.Now())
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	fired := 0
	e.At(10, func() { fired++ })
	e.At(100, func() { fired++ })
	e.RunUntil(50)
	if fired != 1 || e.Pending() != 1 || e.Now() != 50 {
		t.Fatalf("fired=%d pending=%d now=%v", fired, e.Pending(), e.Now())
	}
}

func TestEnginePastEventClamped(t *testing.T) {
	e := NewEngine()
	e.At(10, func() {
		e.At(5, func() {}) // in the past: clamped to now
	})
	for e.Step() {
	}
	if e.Now() != 10 {
		t.Fatalf("now = %v", e.Now())
	}
}
