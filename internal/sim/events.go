// Package sim contains the discrete-event simulations that regenerate the
// paper's evaluation: a full BatchMaker serving system built on the real
// scheduler (internal/core) and the simulated GPU (internal/device), plus
// the graph-batching baselines the paper compares against — padding with
// bucketing (TensorFlow/MXNet style) and dynamic dataflow-graph merging
// (TensorFlow Fold / DyNet style) — and an "ideal" fixed-graph executor.
//
// Virtual time is a time.Duration since simulation start. The simulations
// are single-threaded and deterministic given workload seeds.
package sim

import (
	"container/heap"
	"time"
)

// event is a scheduled callback in virtual time. Events at equal times fire
// in insertion order (seq breaks ties) so runs are deterministic.
type event struct {
	at  time.Duration
	seq int64
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Engine is a minimal discrete-event loop.
type Engine struct {
	now    time.Duration
	events eventHeap
	seq    int64
}

// NewEngine returns an engine at virtual time zero.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current virtual time.
func (e *Engine) Now() time.Duration { return e.now }

// At schedules fn at absolute virtual time t (clamped to now).
func (e *Engine) At(t time.Duration, fn func()) {
	if t < e.now {
		t = e.now
	}
	e.seq++
	heap.Push(&e.events, &event{at: t, seq: e.seq, fn: fn})
}

// After schedules fn after a delay.
func (e *Engine) After(d time.Duration, fn func()) { e.At(e.now+d, fn) }

// Step fires the next event; it returns false when none remain.
func (e *Engine) Step() bool {
	if len(e.events) == 0 {
		return false
	}
	ev := heap.Pop(&e.events).(*event)
	e.now = ev.at
	ev.fn()
	return true
}

// RunUntil processes events until the queue empties or virtual time would
// pass deadline (events beyond it remain queued).
func (e *Engine) RunUntil(deadline time.Duration) {
	for len(e.events) > 0 && e.events[0].at <= deadline {
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return len(e.events) }
