package sim

import (
	"testing"
	"time"

	"batchmaker/internal/cellgraph"
	"batchmaker/internal/dataset"
	"batchmaker/internal/device"
	"batchmaker/internal/metrics"
)

func shortRun(rate float64, seed uint64) RunConfig {
	return RunConfig{
		RatePerSec: rate,
		Duration:   300 * time.Millisecond,
		Warmup:     150 * time.Millisecond,
		Seed:       seed,
	}
}

func defaultBMConfig(model *Model, gpus int) BatchMakerConfig {
	return BatchMakerConfig{
		Model:            model,
		NumGPUs:          gpus,
		Overheads:        device.DefaultOverheads(),
		MaxTasksToSubmit: 5,
	}
}

func TestBatchMakerLowLoadLatency(t *testing.T) {
	// A lone fixed-length-24 request at trivial load executes its 24 steps
	// at small batch sizes: latency ≈ 24 × (Time(1..few) + overhead).
	model := NewLSTMModel(512, 1)
	wl := &FixedWorkload{Shape: Shape{Kind: KindChain, Len: 24}}
	res, err := RunBatchMaker(defaultBMConfig(model, 1), wl, shortRun(50, 1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Latency.Count() == 0 {
		t.Fatal("no measured requests")
	}
	perStep := model.KernelTime(TypeLSTM, 1) + device.DefaultOverheads().PerTask(1)
	want := 24 * perStep
	p50 := res.Latency.P50()
	if p50 < want-time.Millisecond || p50 > want+3*time.Millisecond {
		t.Fatalf("p50 latency = %v, want ≈%v", p50, want)
	}
	// At low load queuing is tiny.
	if q := res.Queuing.P99(); q > 3*time.Millisecond {
		t.Fatalf("p99 queuing = %v, want small at low load", q)
	}
}

func TestBatchMakerFixedLengthPeakThroughput(t *testing.T) {
	// §7.3: with fixed-length-24 inputs the theoretical ceiling is
	// 512/(784µs·24) ≈ 27.1k req/s; BatchMaker reaches ~87% of it due to
	// scheduling/gathering overhead.
	model := NewLSTMModel(512, 1)
	wl := &FixedWorkload{Shape: Shape{Kind: KindChain, Len: 24}}
	res, err := RunBatchMaker(defaultBMConfig(model, 1), wl, shortRun(40_000, 2))
	if err != nil {
		t.Fatal(err)
	}
	tput := res.Throughput()
	if tput < 22_000 || tput > 25_500 {
		t.Fatalf("saturation throughput = %v, want ≈23-24k (87%% of 27.1k)", tput)
	}
}

func TestBatchMakerConservationUnderOverload(t *testing.T) {
	// RunBatchMaker errors if any admitted request never completes; push it
	// well past saturation and make sure the drain still happens.
	model := NewLSTMModel(64, 1)
	wl := &LSTMWorkload{Lengths: dataset.NewWMTLengths(3)}
	if _, err := RunBatchMaker(defaultBMConfig(model, 1), wl, shortRun(30_000, 3)); err != nil {
		t.Fatal(err)
	}
}

func TestBatchMakerMultiGPUScales(t *testing.T) {
	model := NewSeq2SeqModel(512, 256, 1)
	mk := func(gpus int) float64 {
		wl := &Seq2SeqWorkload{Pairs: dataset.NewPairSampler(5)}
		res, err := RunBatchMaker(defaultBMConfig(model, gpus), wl, shortRun(30_000, 4))
		if err != nil {
			t.Fatal(err)
		}
		return res.Throughput()
	}
	t1, t2 := mk(1), mk(2)
	if t2 < t1*1.5 {
		t.Fatalf("2 GPUs = %.0f req/s, 1 GPU = %.0f req/s; want ≥1.5x scaling", t2, t1)
	}
}

func TestBatchMakerSeq2SeqDecoderPriority(t *testing.T) {
	// Smoke: the two-type model runs and produces sane latencies.
	model := NewSeq2SeqModel(512, 256, 1)
	wl := &Seq2SeqWorkload{Pairs: dataset.NewPairSampler(6)}
	res, err := RunBatchMaker(defaultBMConfig(model, 1), wl, shortRun(500, 6))
	if err != nil {
		t.Fatal(err)
	}
	if res.Latency.Count() == 0 || res.Latency.P50() <= 0 {
		t.Fatal("no measurements")
	}
}

func TestBatchMakerTreeWorkload(t *testing.T) {
	model := NewTreeModel(64, 1)
	wl := &TreeWorkload{Trees: dataset.NewTreeSampler(7, 100)}
	res, err := RunBatchMaker(defaultBMConfig(model, 1), wl, shortRun(500, 7))
	if err != nil {
		t.Fatal(err)
	}
	if res.Latency.Count() == 0 {
		t.Fatal("no measurements")
	}
}

func TestBatchMakerRejectsBadConfig(t *testing.T) {
	model := NewLSTMModel(512, 1)
	wl := &FixedWorkload{Shape: Shape{Kind: KindChain, Len: 4}}
	if _, err := RunBatchMaker(BatchMakerConfig{Model: model, NumGPUs: 0}, wl, shortRun(10, 1)); err == nil {
		t.Fatal("want NumGPUs error")
	}
	if _, err := RunBatchMaker(BatchMakerConfig{NumGPUs: 1}, wl, shortRun(10, 1)); err == nil {
		t.Fatal("want nil-model error")
	}
}

func TestBucketingLowLoadComputationTime(t *testing.T) {
	// At trivial load a batch holds one length-21 request, so the padded
	// length is its own length: computation ≈ 21 steps. (Under load, when
	// a batch contains a bucket-bound-length request, the whole batch pads
	// to 30 — §7.3's "almost 50% padding overhead" example; see
	// TestBucketingPadsToLongestInBatch.)
	model := NewLSTMModel(512, 1)
	stepOv, batchOv := DefaultBucketingOverheads("MXNet")
	cfg := BucketingConfig{
		SystemName: "MXNet", Model: model, Kind: KindChain,
		NumGPUs: 1, BucketWidth: 10, MaxBatch: 512,
		StepOverhead: stepOv, BatchOverhead: batchOv,
	}
	wl := &FixedWorkload{Shape: Shape{Kind: KindChain, Len: 21}}
	res, err := RunBucketing(cfg, wl, shortRun(50, 8))
	if err != nil {
		t.Fatal(err)
	}
	comp := res.Computation.P50()
	// A lone request executes at batch 1: 21 steps at Time(1).
	step := model.KernelTime(TypeLSTM, 1) + stepOv
	want := batchOv + 21*step
	if comp < want-time.Millisecond || comp > want+2*time.Millisecond {
		t.Fatalf("computation p50 = %v, want ≈%v (21 unpadded steps)", comp, want)
	}
}

func TestBucketingPadsToLongestInBatch(t *testing.T) {
	// Two requests in the same bucket (21 and 30) batched together: both
	// pay the padded 30-step execution and complete together.
	model := NewLSTMModel(512, 1)
	stepOv, batchOv := DefaultBucketingOverheads("MXNet")
	cfg := BucketingConfig{
		SystemName: "MXNet", Model: model, Kind: KindChain,
		NumGPUs: 1, BucketWidth: 10, MaxBatch: 512,
		StepOverhead: stepOv, BatchOverhead: batchOv,
	}
	alt := &alternatingWorkload{shapes: []Shape{
		{Kind: KindChain, Len: 21},
		{Kind: KindChain, Len: 30},
	}}
	// High enough rate that batches nearly always mix both lengths.
	res, err := RunBucketing(cfg, alt, shortRun(5_000, 9))
	if err != nil {
		t.Fatal(err)
	}
	comp := res.Computation.P50()
	minPadded := 30 * (model.KernelTime(TypeLSTM, 2) + stepOv)
	if comp < minPadded {
		t.Fatalf("computation p50 = %v, below padded 30-step floor %v", comp, minPadded)
	}
}

func TestBucketingFixedLengthPeakMatchesTheory(t *testing.T) {
	// §7.3: with identical length-24 inputs, padding adds nothing (the
	// batch pads to its own longest = 24), so the baselines closely match
	// the theoretical maximum 512/(784µs·24) ≈ 27.1k req/s.
	model := NewLSTMModel(512, 1)
	stepOv, batchOv := DefaultBucketingOverheads("MXNet")
	cfg := BucketingConfig{
		SystemName: "MXNet", Model: model, Kind: KindChain,
		NumGPUs: 1, BucketWidth: 10, MaxBatch: 512,
		StepOverhead: stepOv, BatchOverhead: batchOv,
	}
	wl := &FixedWorkload{Shape: Shape{Kind: KindChain, Len: 24}}
	res, err := RunBucketing(cfg, wl, shortRun(40_000, 9))
	if err != nil {
		t.Fatal(err)
	}
	tput := res.Throughput()
	if tput < 25_000 || tput > 27_500 {
		t.Fatalf("bucketing saturation = %.0f req/s, want ≈26-27k", tput)
	}
}

// alternatingWorkload cycles through a fixed shape list.
type alternatingWorkload struct {
	shapes []Shape
	i      int
}

func (w *alternatingWorkload) Next() Shape {
	s := w.shapes[w.i%len(w.shapes)]
	w.i++
	return s
}

func TestBucketingRejectsTrees(t *testing.T) {
	model := NewTreeModel(64, 1)
	cfg := BucketingConfig{SystemName: "MXNet", Model: model, Kind: KindTree, NumGPUs: 1, MaxBatch: 64}
	wl := &TreeWorkload{Trees: dataset.NewTreeSampler(1, 10)}
	if _, err := RunBucketing(cfg, wl, shortRun(10, 1)); err == nil {
		t.Fatal("padding cannot batch trees; config must be rejected")
	}
}

func TestGraphMergeFoldSlowerThanDyNet(t *testing.T) {
	model := NewTreeModel(64, 1)
	run := shortRun(1_200, 11)
	wlF := &TreeWorkload{Trees: dataset.NewTreeSampler(11, 100)}
	fold, err := RunGraphMerge(DefaultFoldConfig(model, 1), wlF, run)
	if err != nil {
		t.Fatal(err)
	}
	wlD := &TreeWorkload{Trees: dataset.NewTreeSampler(11, 100)}
	dynet, err := RunGraphMerge(DefaultDyNetConfig(model, 1), wlD, run)
	if err != nil {
		t.Fatal(err)
	}
	if dynet.Latency.P90() >= fold.Latency.P90() {
		t.Fatalf("DyNet p90 %v must beat Fold p90 %v", dynet.Latency.P90(), fold.Latency.P90())
	}
}

func TestIdealFixedTreeRuns(t *testing.T) {
	model := NewTreeModel(64, 1)
	tree, err := cellgraph.CompleteBinaryTree(16, 100)
	if err != nil {
		t.Fatal(err)
	}
	wl := &FixedWorkload{Shape: Shape{Kind: KindTree, Tree: tree}}
	res, err := RunIdealFixedTree(model, 1, tree, 64, 10*time.Microsecond, wl, shortRun(1_000, 12))
	if err != nil {
		t.Fatal(err)
	}
	if res.Latency.Count() == 0 {
		t.Fatal("no measurements")
	}
	// A batch executes 31 sequential cells: latency ≥ 16·t_leaf + 15·t_int.
	min := 16*model.KernelTime(TypeLeaf, 1) + 15*model.KernelTime(TypeInternal, 1)
	if res.Latency.Min() < min {
		t.Fatalf("ideal latency %v below physical floor %v", res.Latency.Min(), min)
	}
}

func TestBatchMakerBeatsBucketingOnWMT(t *testing.T) {
	// The headline result (Figure 7): at moderate load BatchMaker's p90
	// latency is far below the baselines'.
	rate := 5_000.0
	model := NewLSTMModel(512, 1)
	wlBM := &LSTMWorkload{Lengths: dataset.NewWMTLengths(42)}
	bm, err := RunBatchMaker(defaultBMConfig(model, 1), wlBM, shortRun(rate, 13))
	if err != nil {
		t.Fatal(err)
	}
	stepOv, batchOv := DefaultBucketingOverheads("MXNet")
	cfg := BucketingConfig{
		SystemName: "MXNet", Model: model, Kind: KindChain,
		NumGPUs: 1, BucketWidth: 10, MaxBatch: 512,
		StepOverhead: stepOv, BatchOverhead: batchOv,
	}
	wlMX := &LSTMWorkload{Lengths: dataset.NewWMTLengths(42)}
	mx, err := RunBucketing(cfg, wlMX, shortRun(rate, 13))
	if err != nil {
		t.Fatal(err)
	}
	if bm.Latency.P90() >= mx.Latency.P90() {
		t.Fatalf("BatchMaker p90 %v must beat bucketing p90 %v", bm.Latency.P90(), mx.Latency.P90())
	}
	// §7.3: the queuing-time gap is the dominant factor.
	if bm.Queuing.P99() >= mx.Queuing.P99() {
		t.Fatalf("BatchMaker p99 queuing %v must beat bucketing %v", bm.Queuing.P99(), mx.Queuing.P99())
	}
}

func TestCollectorWindowAccounting(t *testing.T) {
	cfg := RunConfig{RatePerSec: 1, Duration: time.Second, Warmup: time.Second}
	c := newCollector("x", cfg)
	// Warmup arrival, warmup completion: not measured at all.
	c.record(100*time.Millisecond, 150*time.Millisecond, 200*time.Millisecond)
	// Warmup arrival, in-window completion: counts for throughput only.
	c.record(900*time.Millisecond, 950*time.Millisecond, 1100*time.Millisecond)
	// In-window arrival and completion: counts for both.
	c.record(1200*time.Millisecond, 1250*time.Millisecond, 1300*time.Millisecond)
	// In-window arrival, post-window completion: latency only.
	c.record(1900*time.Millisecond, 2500*time.Millisecond, 2600*time.Millisecond)
	res := c.result()
	if res.Completed != 2 {
		t.Fatalf("window completions = %d, want 2", res.Completed)
	}
	if res.Latency.Count() != 2 {
		t.Fatalf("latency samples = %d, want 2", res.Latency.Count())
	}
	if res.Throughput() != 2 {
		t.Fatalf("throughput = %v", res.Throughput())
	}
}

func TestProfileTree(t *testing.T) {
	tree, _ := cellgraph.CompleteBinaryTree(8, 10)
	p := profileTree(tree)
	if p.leaves != 8 || p.nodes != 15 {
		t.Fatalf("profile = %+v", p)
	}
	if len(p.internal) != 3 || p.internal[0] != 4 || p.internal[1] != 2 || p.internal[2] != 1 {
		t.Fatalf("levels = %v", p.internal)
	}
	// Skewed tree: heights differ from depth.
	skew := &cellgraph.Tree{
		Left:  &cellgraph.Tree{WordID: 0},
		Right: &cellgraph.Tree{Left: &cellgraph.Tree{WordID: 1}, Right: &cellgraph.Tree{WordID: 2}},
	}
	p = profileTree(skew)
	if p.leaves != 3 || p.nodes != 5 || len(p.internal) != 2 {
		t.Fatalf("skew profile = %+v", p)
	}
}

var _ = metrics.RunResult{} // keep the import referenced in minimal builds
