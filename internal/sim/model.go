package sim

import (
	"fmt"
	"time"

	"batchmaker/internal/cellgraph"
	"batchmaker/internal/core"
	"batchmaker/internal/device"
	"batchmaker/internal/rnn"
	"batchmaker/internal/tensor"
)

// TimingCell is a tensor-free cell used by the simulations: only the type
// key, input/output names, and cost curve matter. Step exists to satisfy
// rnn.Cell (and returns zero rows) but the simulator never calls it.
type TimingCell struct {
	name string
	key  string
	ins  []string
	outs []string
}

// NewTimingCell builds a timing cell.
func NewTimingCell(key string, ins, outs []string) *TimingCell {
	return &TimingCell{name: key, key: key, ins: ins, outs: outs}
}

// Name implements rnn.Cell.
func (c *TimingCell) Name() string { return c.name }

// TypeKey implements rnn.Cell.
func (c *TimingCell) TypeKey() string { return c.key }

// InputNames implements rnn.Cell.
func (c *TimingCell) InputNames() []string { return c.ins }

// OutputNames implements rnn.Cell.
func (c *TimingCell) OutputNames() []string { return c.outs }

// Step implements rnn.Cell; the simulator is timing-only so this is a stub
// that produces zero rows of width 1.
func (c *TimingCell) Step(inputs map[string]*tensor.Tensor) (map[string]*tensor.Tensor, error) {
	b := -1
	for _, t := range inputs {
		b = t.Dim(0)
		break
	}
	if b < 0 {
		return nil, fmt.Errorf("sim: cell %s got no inputs", c.name)
	}
	out := make(map[string]*tensor.Tensor, len(c.outs))
	for _, o := range c.outs {
		out[o] = tensor.New(b, 1)
	}
	return out, nil
}

var _ rnn.Cell = (*TimingCell)(nil)

// sharedRow is the literal bound to every sim-graph input; the simulator
// never reads tensor data, so one shared row suffices.
var sharedRow = tensor.New(1, 1)

// RequestKind discriminates the workload shapes of the paper's three
// applications.
type RequestKind int

// Request kinds.
const (
	KindChain RequestKind = iota // LSTM over a sentence
	KindSeq2Seq
	KindTree
)

// Shape describes one request's structure (lengths only — the simulator is
// timing-only).
type Shape struct {
	Kind   RequestKind
	Len    int // chain length
	SrcLen int // seq2seq encode steps
	DstLen int // seq2seq decode steps
	Tree   *cellgraph.Tree
}

// Cells returns the total cell count of the request.
func (s Shape) Cells() int {
	switch s.Kind {
	case KindChain:
		return s.Len
	case KindSeq2Seq:
		return s.SrcLen + s.DstLen
	case KindTree:
		return s.Tree.Nodes()
	}
	return 0
}

// Model wires a request shape to cell types, cost curves and graph builders
// for one application (LSTM, Seq2Seq or TreeLSTM).
type Model struct {
	Name  string
	cells map[string]*TimingCell
	types []core.TypeConfig
	costs *device.CostModel
}

// Cell type keys used by the simulation models.
const (
	TypeLSTM     = "lstm"
	TypeEncoder  = "encoder"
	TypeDecoder  = "decoder"
	TypeLeaf     = "tree_leaf"
	TypeInternal = "tree_internal"
)

// NewLSTMModel builds the single-cell-type chain model (§7.2): max batch
// bmax, LSTM GPU cost curve.
func NewLSTMModel(bmax, minBatch int) *Model {
	m := &Model{Name: "lstm", cells: map[string]*TimingCell{}, costs: device.NewCostModel()}
	m.cells[TypeLSTM] = NewTimingCell(TypeLSTM, []string{"x", "h", "c"}, []string{"h", "c"})
	m.types = []core.TypeConfig{{Key: TypeLSTM, MaxBatch: bmax, MinBatch: minBatch}}
	m.costs.SetCurve(TypeLSTM, device.LSTMGPUCurve())
	return m
}

// NewSeq2SeqModel builds the encoder/decoder model (§7.4) with separate max
// batch sizes; decoders get higher priority (§4.3).
func NewSeq2SeqModel(bmaxEnc, bmaxDec, minBatch int) *Model {
	m := &Model{Name: "seq2seq", cells: map[string]*TimingCell{}, costs: device.NewCostModel()}
	m.cells[TypeEncoder] = NewTimingCell(TypeEncoder, []string{"ids", "h", "c"}, []string{"h", "c"})
	m.cells[TypeDecoder] = NewTimingCell(TypeDecoder, []string{"ids", "h", "c"}, []string{"h", "c", "word"})
	m.types = []core.TypeConfig{
		{Key: TypeEncoder, MaxBatch: bmaxEnc, MinBatch: minBatch, Priority: 0},
		{Key: TypeDecoder, MaxBatch: bmaxDec, MinBatch: minBatch, Priority: 1},
	}
	m.costs.SetCurve(TypeEncoder, device.LSTMGPUCurve())
	m.costs.SetCurve(TypeDecoder, device.DecoderGPUCurve())
	return m
}

// NewTreeModel builds the TreeLSTM model (§7.5); internal cells get higher
// priority than leaves (§4.3).
func NewTreeModel(bmax, minBatch int) *Model {
	m := &Model{Name: "treelstm", cells: map[string]*TimingCell{}, costs: device.NewCostModel()}
	m.cells[TypeLeaf] = NewTimingCell(TypeLeaf, []string{"ids"}, []string{"h", "c"})
	m.cells[TypeInternal] = NewTimingCell(TypeInternal, []string{"hl", "cl", "hr", "cr"}, []string{"h", "c"})
	m.types = []core.TypeConfig{
		{Key: TypeLeaf, MaxBatch: bmax, MinBatch: minBatch, Priority: 0},
		{Key: TypeInternal, MaxBatch: bmax, MinBatch: minBatch, Priority: 1},
	}
	m.costs.SetCurve(TypeLeaf, device.TreeLeafGPUCurve())
	m.costs.SetCurve(TypeInternal, device.LSTMGPUCurve())
	return m
}

// Types returns the scheduler type configuration.
func (m *Model) Types() []core.TypeConfig { return append([]core.TypeConfig(nil), m.types...) }

// WithTypes returns a copy of the model whose type configuration has been
// transformed by f (used by ablations, e.g. to flatten priorities).
func (m *Model) WithTypes(f func([]core.TypeConfig) []core.TypeConfig) *Model {
	c := *m
	c.types = f(m.Types())
	return &c
}

// Costs returns the cost model.
func (m *Model) Costs() *device.CostModel { return m.costs }

// KernelTime returns the batched kernel time for a type.
func (m *Model) KernelTime(typeKey string, b int) time.Duration {
	return m.costs.KernelTime(typeKey, b)
}

// BuildGraph unfolds a shape into a timing cell graph.
func (m *Model) BuildGraph(s Shape) (*cellgraph.Graph, error) {
	switch s.Kind {
	case KindChain:
		cell, ok := m.cells[TypeLSTM]
		if !ok {
			return nil, fmt.Errorf("sim: model %s cannot build chains", m.Name)
		}
		return buildChain(cell, s.Len), nil
	case KindSeq2Seq:
		enc, okE := m.cells[TypeEncoder]
		dec, okD := m.cells[TypeDecoder]
		if !okE || !okD {
			return nil, fmt.Errorf("sim: model %s cannot build seq2seq", m.Name)
		}
		return buildSeq2Seq(enc, dec, s.SrcLen, s.DstLen), nil
	case KindTree:
		leaf, okL := m.cells[TypeLeaf]
		internal, okI := m.cells[TypeInternal]
		if !okL || !okI {
			return nil, fmt.Errorf("sim: model %s cannot build trees", m.Name)
		}
		return buildTree(leaf, internal, s.Tree), nil
	}
	return nil, fmt.Errorf("sim: unknown request kind %d", s.Kind)
}

func buildChain(cell *TimingCell, n int) *cellgraph.Graph {
	g := &cellgraph.Graph{Nodes: make([]*cellgraph.Node, 0, n)}
	for t := 0; t < n; t++ {
		node := &cellgraph.Node{
			ID:     cellgraph.NodeID(t),
			Cell:   cell,
			Inputs: map[string]cellgraph.Binding{"x": cellgraph.Lit(sharedRow)},
		}
		if t == 0 {
			node.Inputs["h"] = cellgraph.Lit(sharedRow)
			node.Inputs["c"] = cellgraph.Lit(sharedRow)
		} else {
			node.Inputs["h"] = cellgraph.Ref(cellgraph.NodeID(t-1), "h")
			node.Inputs["c"] = cellgraph.Ref(cellgraph.NodeID(t-1), "c")
		}
		g.Nodes = append(g.Nodes, node)
	}
	g.Results = []cellgraph.OutputSpec{{Name: "h", Node: cellgraph.NodeID(n - 1), Output: "h"}}
	return g
}

func buildSeq2Seq(enc, dec *TimingCell, srcLen, dstLen int) *cellgraph.Graph {
	g := &cellgraph.Graph{Nodes: make([]*cellgraph.Node, 0, srcLen+dstLen)}
	for t := 0; t < srcLen; t++ {
		node := &cellgraph.Node{
			ID:     cellgraph.NodeID(t),
			Cell:   enc,
			Inputs: map[string]cellgraph.Binding{"ids": cellgraph.Lit(sharedRow)},
		}
		if t == 0 {
			node.Inputs["h"] = cellgraph.Lit(sharedRow)
			node.Inputs["c"] = cellgraph.Lit(sharedRow)
		} else {
			node.Inputs["h"] = cellgraph.Ref(cellgraph.NodeID(t-1), "h")
			node.Inputs["c"] = cellgraph.Ref(cellgraph.NodeID(t-1), "c")
		}
		g.Nodes = append(g.Nodes, node)
	}
	for t := 0; t < dstLen; t++ {
		id := cellgraph.NodeID(srcLen + t)
		node := &cellgraph.Node{ID: id, Cell: dec, Inputs: map[string]cellgraph.Binding{}}
		if t == 0 {
			node.Inputs["ids"] = cellgraph.Lit(sharedRow)
			node.Inputs["h"] = cellgraph.Ref(cellgraph.NodeID(srcLen-1), "h")
			node.Inputs["c"] = cellgraph.Ref(cellgraph.NodeID(srcLen-1), "c")
		} else {
			node.Inputs["ids"] = cellgraph.Ref(id-1, "word")
			node.Inputs["h"] = cellgraph.Ref(id-1, "h")
			node.Inputs["c"] = cellgraph.Ref(id-1, "c")
		}
		g.Nodes = append(g.Nodes, node)
	}
	last := cellgraph.NodeID(srcLen + dstLen - 1)
	g.Results = []cellgraph.OutputSpec{{Name: "h", Node: last, Output: "h"}}
	return g
}

func buildTree(leaf, internal *TimingCell, t *cellgraph.Tree) *cellgraph.Graph {
	g := &cellgraph.Graph{}
	var build func(n *cellgraph.Tree) cellgraph.NodeID
	build = func(n *cellgraph.Tree) cellgraph.NodeID {
		if n.IsLeaf() {
			id := cellgraph.NodeID(len(g.Nodes))
			g.Nodes = append(g.Nodes, &cellgraph.Node{
				ID:     id,
				Cell:   leaf,
				Inputs: map[string]cellgraph.Binding{"ids": cellgraph.Lit(sharedRow)},
			})
			return id
		}
		l := build(n.Left)
		r := build(n.Right)
		id := cellgraph.NodeID(len(g.Nodes))
		g.Nodes = append(g.Nodes, &cellgraph.Node{
			ID:   id,
			Cell: internal,
			Inputs: map[string]cellgraph.Binding{
				"hl": cellgraph.Ref(l, "h"), "cl": cellgraph.Ref(l, "c"),
				"hr": cellgraph.Ref(r, "h"), "cr": cellgraph.Ref(r, "c"),
			},
		})
		return id
	}
	root := build(t)
	g.Results = []cellgraph.OutputSpec{{Name: "h", Node: root, Output: "h"}}
	return g
}
